package capture_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"loopscope/internal/capture"
	"loopscope/internal/core"
	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
)

func buildLink(t *testing.T) (*netsim.Network, *netsim.Router, *netsim.Link) {
	t.Helper()
	n := netsim.NewNetwork()
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	l := n.Connect(a, b, netsim.DefaultLinkParams())
	dst := routing.MustParsePrefix("203.0.113.0/24")
	b.AttachPrefix(dst)
	a.SetRoute(dst, b.ID)
	return n, a, l
}

func pkt(id uint16, payload int) packet.Packet {
	return packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, TTL: 60, Protocol: packet.ProtoTCP,
			Src: packet.AddrFrom(192, 0, 2, 1), Dst: packet.AddrFrom(203, 0, 113, 9), ID: id,
		},
		Kind:         packet.KindTCP,
		TCP:          packet.TCPHeader{SrcPort: 1, DstPort: 2, DataOffset: 5, Flags: packet.TCPAck},
		HasTransport: true,
		PayloadLen:   payload,
		PayloadSeed:  uint64(id),
	}
}

func TestTapSnapshotsAndCounts(t *testing.T) {
	n, a, l := buildLink(t)
	tap := capture.NewLinkTap(l, 40, nil, true)

	n.Inject(a, pkt(1, 1000))
	n.Inject(a, pkt(2, 0)) // 40-byte packet: snapshot == whole packet
	n.Sim.Run(time.Second)

	recs := tap.Records()
	if len(recs) != 2 || tap.Count() != 2 {
		t.Fatalf("captured %d records", len(recs))
	}
	if len(recs[0].Data) != 40 || recs[0].WireLen != 1040 {
		t.Errorf("record 0: caplen=%d wirelen=%d", len(recs[0].Data), recs[0].WireLen)
	}
	if len(recs[1].Data) != 40 || recs[1].WireLen != 40 {
		t.Errorf("record 1: caplen=%d wirelen=%d", len(recs[1].Data), recs[1].WireLen)
	}
	if tap.WireBytes() != 1080 {
		t.Errorf("wire bytes = %d", tap.WireBytes())
	}
	if err := trace.Validate(recs); err != nil {
		t.Errorf("captured trace invalid: %v", err)
	}
	// Decoded snapshot must match the injected header.
	p, err := packet.Decode(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP.ID != 1 || p.TCP.DstPort != 2 {
		t.Errorf("decoded snapshot mismatch: %+v", p)
	}
	// TTL on the wire is one less than injected (the ingress router
	// forwarded the packet once).
	if p.IP.TTL != 59 {
		t.Errorf("captured TTL = %d, want 59", p.IP.TTL)
	}
}

func TestTapStreamsToSink(t *testing.T) {
	n, a, l := buildLink(t)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Meta{Link: "test", SnapLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	tap := capture.NewLinkTap(l, 40, w, false)

	for i := 0; i < 100; i++ {
		n.Inject(a, pkt(uint16(i+1), 200))
	}
	n.Sim.Run(time.Second)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if tap.Count() != 0 {
		t.Errorf("retain=false kept %d records", tap.Count())
	}
	if tap.Errors() != 0 {
		t.Errorf("tap errors = %d", tap.Errors())
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Errorf("sink received %d records", len(recs))
	}
}

// failAfterSink accepts n writes and then fails every one.
type failAfterSink struct {
	n      int
	wrote  int
	failed int
}

func (s *failAfterSink) Write(trace.Record) error {
	if s.wrote >= s.n {
		s.failed++
		return errSinkFull
	}
	s.wrote++
	return nil
}

var errSinkFull = errors.New("sink full")

func TestTapSurfacesSinkError(t *testing.T) {
	n, a, l := buildLink(t)
	sink := &failAfterSink{n: 3}
	tap := capture.NewLinkTap(l, 40, sink, true)

	for i := 0; i < 10; i++ {
		at := time.Duration(i) * time.Millisecond
		id := uint16(i + 1)
		n.Sim.At(at, func() { n.Inject(a, pkt(id, 100)) })
	}
	n.Sim.Run(time.Second)

	if err := tap.Err(); !errors.Is(err, errSinkFull) {
		t.Fatalf("tap.Err() = %v, want errSinkFull", err)
	}
	if tap.Errors() == 0 {
		t.Error("sink failure not counted")
	}
	// After the first failure the sink must not be written again...
	if sink.failed != 1 {
		t.Errorf("sink saw %d failed writes, want exactly 1", sink.failed)
	}
	// ...but in-memory capture continues.
	if tap.Count() != 10 {
		t.Errorf("retained %d records, want 10", tap.Count())
	}
}

func TestTapDefaultSnapLen(t *testing.T) {
	_, _, l := buildLink(t)
	tap := capture.NewLinkTap(l, 0, nil, true)
	if tap.Meta().SnapLen != trace.DefaultSnapLen {
		t.Errorf("snaplen = %d", tap.Meta().SnapLen)
	}
	if tap.Source().Meta().SnapLen != trace.DefaultSnapLen {
		t.Error("source meta mismatch")
	}
}

func TestTapDuplicateInjection(t *testing.T) {
	n, a, l := buildLink(t)
	tap := capture.NewLinkTapOpts(l, capture.Options{
		SnapLen: 40, Retain: true,
		DupRate: 1, DupTTLDrop: 2, DupDelay: 500 * time.Microsecond,
		RNG: stats.NewRNG(1),
	})
	n.Inject(a, pkt(1, 100))
	n.Sim.At(10*time.Millisecond, func() { n.Inject(a, pkt(2, 100)) })
	// A trailing packet flushes pending duplicates into the record
	// stream.
	n.Sim.At(20*time.Millisecond, func() { n.Inject(a, pkt(3, 100)) })
	n.Sim.Run(time.Second)

	recs := tap.Records()
	if tap.Duplicates() != 3 {
		t.Errorf("duplicates = %d, want 3", tap.Duplicates())
	}
	// At least the first two duplicates must have been flushed.
	if len(recs) < 4 {
		t.Fatalf("records = %d", len(recs))
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatalf("duplicated trace invalid: %v", err)
	}
	// Record 1 is the duplicate of record 0: same bytes except TTL
	// (lower by 2) and IP checksum, and its checksum must verify.
	p0, err := packet.Decode(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := packet.Decode(recs[1].Data)
	if err != nil {
		t.Fatal(err)
	}
	if p0.IP.ID != p1.IP.ID || int(p0.IP.TTL)-int(p1.IP.TTL) != 2 {
		t.Errorf("duplicate TTL relation wrong: %d -> %d", p0.IP.TTL, p1.IP.TTL)
	}
	if !p1.IP.VerifyChecksum(recs[1].Data) {
		t.Error("duplicate IP checksum does not verify")
	}
	if p0.TCP.Checksum != p1.TCP.Checksum {
		t.Error("duplicate transport checksum differs")
	}
	// The detector must classify original+duplicate as a discarded
	// pair, not a loop.
	res := core.DetectRecords(recs, core.DefaultConfig())
	if len(res.Streams) != 0 {
		t.Errorf("duplicates detected as %d loop streams", len(res.Streams))
	}
	if res.PairsDiscarded == 0 {
		t.Error("no pairs discarded")
	}
}
