// Package capture turns a netsim link tap into a packet trace: every
// packet crossing the monitored link is serialised and truncated to
// the snapshot length, exactly as the optical-splitter-plus-DAG-card
// rigs that produced the paper's traces did.
package capture

import (
	"fmt"
	"time"

	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
)

// Options configures a LinkTap beyond the basics.
type Options struct {
	// SnapLen is the snapshot length; <= 0 selects
	// trace.DefaultSnapLen.
	SnapLen int
	// Sink, when non-nil, receives records as they are captured.
	Sink trace.Sink
	// Retain keeps records in memory for Records().
	Retain bool
	// DupRate injects link-layer duplication artefacts: with this
	// probability a captured packet appears a second time, DupDelay
	// later, with its TTL lower by DupTTLDrop (an upstream
	// duplicate that reached the link over a slightly longer path —
	// a misbehaving SONET protection layer or an undrained token
	// ring, per the paper's §IV-A.2). These two-element replica sets
	// are exactly what the detector's step 2 must reject.
	DupRate    float64
	DupTTLDrop int
	DupDelay   time.Duration
	// RNG drives the duplication draw; required when DupRate > 0.
	RNG *stats.RNG
}

// LinkTap records packets crossing one unidirectional link into
// memory.
type LinkTap struct {
	meta    trace.Meta
	recs    []trace.Record
	errs    int
	sink    trace.Sink
	sinkErr error
	dups    int
	// wireBytes accumulates the on-the-wire volume seen, for average
	// bandwidth reporting (Table I).
	wireBytes uint64
	// pending holds duplicate records awaiting their delayed
	// timestamp (flushed in order as later packets arrive).
	pending []trace.Record
}

// NewLinkTap attaches a tap to link. snapLen <= 0 selects
// trace.DefaultSnapLen. If sink is non-nil records stream to it as
// they are captured (in addition to being retained in memory when
// retain is true).
func NewLinkTap(link *netsim.Link, snapLen int, sink trace.Sink, retain bool) *LinkTap {
	return NewLinkTapOpts(link, Options{SnapLen: snapLen, Sink: sink, Retain: retain})
}

// NewLinkTapOpts attaches a tap with full options.
func NewLinkTapOpts(link *netsim.Link, o Options) *LinkTap {
	if o.SnapLen <= 0 {
		o.SnapLen = trace.DefaultSnapLen
	}
	if o.DupRate > 0 && o.RNG == nil {
		panic("capture: DupRate requires an RNG")
	}
	if o.DupTTLDrop <= 0 {
		o.DupTTLDrop = 2
	}
	if o.DupDelay <= 0 {
		o.DupDelay = time.Millisecond
	}
	t := &LinkTap{
		meta: trace.Meta{Link: link.Name, SnapLen: o.SnapLen},
		sink: o.Sink,
	}
	link.AddTap(func(at netsim.Time, tp *netsim.TransitPacket) {
		// Flush delayed duplicates that precede this packet.
		for len(t.pending) > 0 && t.pending[0].Time <= at {
			t.emit(t.pending[0], o.Retain)
			t.pending = t.pending[1:]
		}
		buf := make([]byte, o.SnapLen)
		n, err := tp.Pkt.Serialize(buf, o.SnapLen)
		if err != nil {
			t.errs++
			return
		}
		rec := trace.Record{
			Time:    at,
			WireLen: tp.Pkt.WireLen(),
			Data:    buf[:n],
		}
		t.emit(rec, o.Retain)
		if o.DupRate > 0 && o.RNG.Bool(o.DupRate) && int(tp.Pkt.IP.TTL) > o.DupTTLDrop {
			dup := trace.Record{
				Time:    at + o.DupDelay,
				WireLen: rec.WireLen,
				Data:    duplicateBytes(rec.Data, o.DupTTLDrop),
			}
			t.dups++
			t.pending = append(t.pending, dup)
		}
	})
	return t
}

// duplicateBytes copies a snapshot, lowers its TTL by drop, and
// recomputes the IP header checksum — the wire image of the same
// packet after drop more hops.
func duplicateBytes(data []byte, drop int) []byte {
	d := make([]byte, len(data))
	copy(d, data)
	if len(d) < packet.IPv4HeaderLen {
		return d
	}
	d[8] -= byte(drop)
	d[10], d[11] = 0, 0
	ck := packet.Checksum(d[:packet.IPv4HeaderLen], 0)
	d[10], d[11] = byte(ck>>8), byte(ck)
	return d
}

func (t *LinkTap) emit(rec trace.Record, retain bool) {
	t.wireBytes += uint64(rec.WireLen)
	// A failed sink stays failed (a full disk does not un-fill), so
	// the first error is kept for Err and the sink is not written
	// again; in-memory retention continues regardless.
	if t.sink != nil && t.sinkErr == nil {
		if err := t.sink.Write(rec); err != nil {
			t.errs++
			t.sinkErr = fmt.Errorf("capture: sink write on %s: %w", t.meta.Link, err)
		}
	}
	if retain {
		t.recs = append(t.recs, rec)
	}
}

// Duplicates returns the number of injected link-layer duplicates.
func (t *LinkTap) Duplicates() int { return t.dups }

// Meta returns the trace metadata.
func (t *LinkTap) Meta() trace.Meta { return t.meta }

// Records returns the retained records in capture order.
func (t *LinkTap) Records() []trace.Record { return t.recs }

// Count returns the number of packets captured.
func (t *LinkTap) Count() int { return len(t.recs) }

// WireBytes returns the total on-the-wire bytes observed.
func (t *LinkTap) WireBytes() uint64 { return t.wireBytes }

// Errors returns the number of capture failures (serialisation or
// sink errors).
func (t *LinkTap) Errors() int { return t.errs }

// Err returns the first sink write error, or nil. Once a sink write
// fails the sink receives no further records, so callers that stream
// captures to disk must check Err before trusting the output file.
func (t *LinkTap) Err() error { return t.sinkErr }

// Source returns the retained records as a trace.Source.
func (t *LinkTap) Source() *trace.SliceSource {
	return trace.NewSliceSource(t.meta, t.recs)
}

// String summarises the tap.
func (t *LinkTap) String() string {
	return fmt.Sprintf("tap(%s): %d packets, %d bytes", t.meta.Link, len(t.recs), t.wireBytes)
}
