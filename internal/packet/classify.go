package packet

import "strings"

// ClassMask is a bit set of the traffic-type categories used by the
// paper's Figures 5 and 6. A single packet can fall into several
// categories: a TCP SYN-ACK is counted under TCP, SYN and ACK.
type ClassMask uint16

// Traffic-type categories, in the order the paper plots them.
const (
	ClassTCP ClassMask = 1 << iota
	ClassACK
	ClassPSH
	ClassRST
	ClassURG
	ClassSYN
	ClassFIN
	ClassUDP
	ClassMcast
	ClassICMP
	ClassOther

	numClasses = 11
)

// ClassNames lists the category labels in plot order.
var ClassNames = [numClasses]string{
	"TCP", "ACK", "PSH", "RST", "URG", "SYN", "FIN",
	"UDP", "MCAST", "ICMP", "OTHER",
}

// ClassIndex converts a single-bit mask to its plot-order index, or -1
// when the mask is not a single known bit.
func ClassIndex(m ClassMask) int {
	for i := 0; i < numClasses; i++ {
		if m == 1<<i {
			return i
		}
	}
	return -1
}

// String renders the mask as a +-joined category list.
func (m ClassMask) String() string {
	var parts []string
	for i := 0; i < numClasses; i++ {
		if m&(1<<i) != 0 {
			parts = append(parts, ClassNames[i])
		}
	}
	if len(parts) == 0 {
		return "NONE"
	}
	return strings.Join(parts, "+")
}

// Classify assigns a packet to every category it belongs to, following
// the paper: protocol class first, per-flag classes for TCP, MCAST for
// multicast destinations regardless of protocol.
func Classify(p *Packet) ClassMask {
	var m ClassMask
	switch p.Kind {
	case KindTCP:
		m |= ClassTCP
		if p.HasTransport {
			f := p.TCP.Flags
			if f&TCPAck != 0 {
				m |= ClassACK
			}
			if f&TCPPsh != 0 {
				m |= ClassPSH
			}
			if f&TCPRst != 0 {
				m |= ClassRST
			}
			if f&TCPUrg != 0 {
				m |= ClassURG
			}
			if f&TCPSyn != 0 {
				m |= ClassSYN
			}
			if f&TCPFin != 0 {
				m |= ClassFIN
			}
		}
	case KindUDP:
		m |= ClassUDP
	case KindICMP:
		m |= ClassICMP
	default:
		m |= ClassOther
	}
	if p.IP.Dst.IsMulticast() {
		m |= ClassMcast
	}
	return m
}
