package packet

import "fmt"

// Addr is an IPv4 address in network byte order. It is a fixed-size
// array so it is comparable and usable as a map key without
// allocation, which matters on the detector's hot path.
type Addr [4]byte

// AddrFrom returns the address a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// AddrFromUint32 converts a host-order uint32 (a<<24|b<<16|c<<8|d)
// into an Addr.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the address as a host-order uint32.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IsMulticast reports whether the address is in 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return a[0]&0xf0 == 0xe0 }

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// ParseAddr parses dotted-quad notation. It accepts exactly four
// decimal octets.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	octet := 0
	val := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if val < 0 {
				val = 0
			}
			val = val*10 + int(c-'0')
			if val > 255 {
				return Addr{}, fmt.Errorf("packet: octet out of range in %q", s)
			}
		case c == '.':
			if val < 0 || octet >= 3 {
				return Addr{}, fmt.Errorf("packet: malformed address %q", s)
			}
			a[octet] = byte(val)
			octet++
			val = -1
		default:
			return Addr{}, fmt.Errorf("packet: invalid character %q in %q", c, s)
		}
	}
	if octet != 3 || val < 0 {
		return Addr{}, fmt.Errorf("packet: malformed address %q", s)
	}
	a[3] = byte(val)
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error, for use in tests
// and static configuration.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
