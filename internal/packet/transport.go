package packet

import (
	"encoding/binary"
	"fmt"
)

// TCP flag bits, in wire order.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCPHeader is a decoded TCP header. A 40-byte trace snapshot carries
// exactly the base header with no options for a 20-byte IP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// DecodeTCP parses a TCP header from the front of data.
func DecodeTCP(data []byte) (TCPHeader, error) {
	var h TCPHeader
	if len(data) < TCPHeaderLen {
		return h, fmt.Errorf("packet: TCP header truncated: %d bytes", len(data))
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Seq = binary.BigEndian.Uint32(data[4:8])
	h.Ack = binary.BigEndian.Uint32(data[8:12])
	h.DataOffset = data[12] >> 4
	h.Flags = data[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(data[14:16])
	h.Checksum = binary.BigEndian.Uint16(data[16:18])
	h.Urgent = binary.BigEndian.Uint16(data[18:20])
	return h, nil
}

// Encode serialises the header into buf (>= TCPHeaderLen bytes)
// without computing a checksum; use ComputeTCPChecksum once the full
// segment is assembled. Returns bytes written.
func (h *TCPHeader) Encode(buf []byte) (int, error) {
	if len(buf) < TCPHeaderLen {
		return 0, fmt.Errorf("packet: buffer too small for TCP header")
	}
	if h.DataOffset == 0 {
		h.DataOffset = 5
	}
	binary.BigEndian.PutUint16(buf[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], h.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], h.Seq)
	binary.BigEndian.PutUint32(buf[8:12], h.Ack)
	buf[12] = h.DataOffset << 4
	buf[13] = h.Flags
	binary.BigEndian.PutUint16(buf[14:16], h.Window)
	binary.BigEndian.PutUint16(buf[16:18], h.Checksum)
	binary.BigEndian.PutUint16(buf[18:20], h.Urgent)
	return TCPHeaderLen, nil
}

// ComputeTCPChecksum computes the TCP checksum over segment (header +
// payload) using the IPv4 pseudo-header, stores it in the serialised
// segment bytes, and returns it. segment[16:18] must be zero on entry
// or the result is undefined.
func ComputeTCPChecksum(src, dst Addr, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, ProtoTCP, uint16(len(segment)))
	ck := Checksum(segment, sum)
	binary.BigEndian.PutUint16(segment[16:18], ck)
	return ck
}

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a decoded UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// DecodeUDP parses a UDP header from the front of data.
func DecodeUDP(data []byte) (UDPHeader, error) {
	var h UDPHeader
	if len(data) < UDPHeaderLen {
		return h, fmt.Errorf("packet: UDP header truncated: %d bytes", len(data))
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:2])
	h.DstPort = binary.BigEndian.Uint16(data[2:4])
	h.Length = binary.BigEndian.Uint16(data[4:6])
	h.Checksum = binary.BigEndian.Uint16(data[6:8])
	return h, nil
}

// Encode serialises the header into buf (>= UDPHeaderLen bytes)
// without computing a checksum. Returns bytes written.
func (h *UDPHeader) Encode(buf []byte) (int, error) {
	if len(buf) < UDPHeaderLen {
		return 0, fmt.Errorf("packet: buffer too small for UDP header")
	}
	binary.BigEndian.PutUint16(buf[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], h.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], h.Length)
	binary.BigEndian.PutUint16(buf[6:8], h.Checksum)
	return UDPHeaderLen, nil
}

// ComputeUDPChecksum computes the UDP checksum over datagram (header +
// payload) using the IPv4 pseudo-header, stores it in the serialised
// datagram bytes, and returns it. Per RFC 768 a computed zero is sent
// as 0xffff.
func ComputeUDPChecksum(src, dst Addr, datagram []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, ProtoUDP, uint16(len(datagram)))
	ck := Checksum(datagram, sum)
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(datagram[6:8], ck)
	return ck
}

// ICMP message types used by the simulator and the analysis.
const (
	ICMPEchoReply    = 0
	ICMPUnreachable  = 3
	ICMPEchoRequest  = 8
	ICMPTimeExceeded = 11
)

// ICMPHeaderLen is the length of the fixed ICMP header.
const ICMPHeaderLen = 8

// ICMPHeader is a decoded ICMP header (fixed part).
type ICMPHeader struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	// Rest carries the type-specific second word: identifier/sequence
	// for echo, unused for time-exceeded.
	Rest uint32
}

// DecodeICMP parses an ICMP header from the front of data.
func DecodeICMP(data []byte) (ICMPHeader, error) {
	var h ICMPHeader
	if len(data) < ICMPHeaderLen {
		return h, fmt.Errorf("packet: ICMP header truncated: %d bytes", len(data))
	}
	h.Type = data[0]
	h.Code = data[1]
	h.Checksum = binary.BigEndian.Uint16(data[2:4])
	h.Rest = binary.BigEndian.Uint32(data[4:8])
	return h, nil
}

// Encode serialises the header into buf (>= ICMPHeaderLen bytes)
// without computing a checksum. Returns bytes written.
func (h *ICMPHeader) Encode(buf []byte) (int, error) {
	if len(buf) < ICMPHeaderLen {
		return 0, fmt.Errorf("packet: buffer too small for ICMP header")
	}
	buf[0] = h.Type
	buf[1] = h.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint32(buf[4:8], h.Rest)
	return ICMPHeaderLen, nil
}

// ComputeICMPChecksum computes the ICMP checksum over message (header
// + payload), stores it in the serialised bytes, and returns it.
func ComputeICMPChecksum(message []byte) uint16 {
	message[2], message[3] = 0, 0
	ck := Checksum(message, 0)
	binary.BigEndian.PutUint16(message[2:4], ck)
	return ck
}
