// Package packet implements encoding and decoding of the IPv4, TCP,
// UDP and ICMP headers that appear in backbone packet traces, together
// with the internet checksum and the traffic-type classification used
// by the paper's analysis (Figures 5 and 6).
//
// The design follows the layer-decoding idiom popularised by gopacket
// — fixed header structs with DecodeFromBytes/SerializeTo style
// methods — but is stdlib-only and trimmed to the protocols a 40-byte
// backbone snapshot can contain.
package packet

// Checksum computes the RFC 1071 internet checksum over data,
// starting from the given initial partial sum. Pass 0 for a plain
// checksum; pass a pseudo-header sum for TCP/UDP.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial sum of the IPv4 pseudo-header
// used by the TCP and UDP checksums.
func pseudoHeaderSum(src, dst Addr, protocol uint8, length uint16) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(protocol)
	sum += uint32(length)
	return sum
}
