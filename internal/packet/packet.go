package packet

import (
	"encoding/binary"
	"fmt"
)

// TransportKind identifies the transport protocol of a parsed packet.
type TransportKind uint8

// Transport kinds.
const (
	KindOther TransportKind = iota
	KindTCP
	KindUDP
	KindICMP
)

// String returns the conventional protocol name.
func (k TransportKind) String() string {
	switch k {
	case KindTCP:
		return "TCP"
	case KindUDP:
		return "UDP"
	case KindICMP:
		return "ICMP"
	default:
		return "OTHER"
	}
}

// Packet is a parsed IPv4 packet. It serves two roles:
//
//   - In the simulator it is the unit of forwarding. Payload bytes are
//     never materialised; PayloadLen and PayloadSeed describe them.
//     The seed deterministically defines the payload's first eight
//     bytes (the rest are zero), which is enough to give every
//     distinct packet a distinct transport checksum while keeping a
//     multi-million-packet simulation in memory.
//
//   - On the detector side it is the parsed view of a trace record,
//     possibly truncated to the 40-byte snapshot length; then
//     HasTransport reports whether the transport header was present.
type Packet struct {
	IP   IPv4Header
	Kind TransportKind
	TCP  TCPHeader
	UDP  UDPHeader
	ICMP ICMPHeader
	// HasTransport reports whether the transport header was parsed
	// (false for truncated or unknown-protocol packets).
	HasTransport bool

	// PayloadLen is the transport payload length in bytes.
	PayloadLen int
	// PayloadSeed determines the payload's leading bytes; see above.
	PayloadSeed uint64
}

// transportHeaderLen returns the wire length of the packet's transport
// header.
func (p *Packet) transportHeaderLen() int {
	switch p.Kind {
	case KindTCP:
		return int(p.TCP.DataOffset) * 4
	case KindUDP:
		return UDPHeaderLen
	case KindICMP:
		return ICMPHeaderLen
	default:
		return 0
	}
}

// WireLen returns the total on-the-wire length of the packet
// (IP header + transport header + payload).
func (p *Packet) WireLen() int {
	return p.IP.HeaderLen() + p.transportHeaderLen() + p.PayloadLen
}

// Decode parses an IPv4 packet from data, which may be a truncated
// snapshot. The IP header must be complete; the transport header is
// parsed when enough bytes are present, otherwise HasTransport is
// false. PayloadLen is derived from the IP total length, not from the
// captured bytes.
func Decode(data []byte) (Packet, error) {
	var p Packet
	ip, err := DecodeIPv4(data)
	if err != nil {
		return p, err
	}
	p.IP = ip
	rest := data[ip.HeaderLen():]
	switch ip.Protocol {
	case ProtoTCP:
		p.Kind = KindTCP
		if tcp, err := DecodeTCP(rest); err == nil {
			p.TCP = tcp
			p.HasTransport = true
		}
	case ProtoUDP:
		p.Kind = KindUDP
		if udp, err := DecodeUDP(rest); err == nil {
			p.UDP = udp
			p.HasTransport = true
		}
	case ProtoICMP:
		p.Kind = KindICMP
		if icmp, err := DecodeICMP(rest); err == nil {
			p.ICMP = icmp
			p.HasTransport = true
		}
	default:
		p.Kind = KindOther
	}
	if p.HasTransport {
		p.PayloadLen = int(ip.TotalLength) - ip.HeaderLen() - p.transportHeaderLen()
		if p.PayloadLen < 0 {
			p.PayloadLen = 0
		}
	} else {
		p.PayloadLen = int(ip.TotalLength) - ip.HeaderLen()
		if p.PayloadLen < 0 {
			p.PayloadLen = 0
		}
	}
	return p, nil
}

// Serialize writes the packet's wire representation into buf and
// returns the number of bytes written, at most max bytes (pass
// WireLen() or larger for the full packet). The payload is rendered
// as the eight seed bytes followed by zeros. Checksums (IP header and
// transport) are computed over the full logical packet so a truncated
// snapshot still carries the checksums the full packet would have —
// exactly what a capture card records.
func (p *Packet) Serialize(buf []byte, max int) (int, error) {
	full := p.WireLen()
	if max > full {
		max = full
	}
	if len(buf) < max {
		return 0, fmt.Errorf("packet: buffer too small: %d < %d", len(buf), max)
	}
	// Assemble the full header block in a scratch area: IP header +
	// transport header + up to 8 seed bytes. The zero payload tail
	// contributes nothing to internet checksums, so checksums over
	// this block (with the right pseudo-header lengths) equal the
	// full-packet checksums.
	var scratch [IPv4HeaderLen + 60 + 8]byte
	p.IP.TotalLength = uint16(full)
	ipLen, err := p.IP.Encode(scratch[:])
	if err != nil {
		return 0, err
	}
	seedLen := p.PayloadLen
	if seedLen > 8 {
		seedLen = 8
	}
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], p.PayloadSeed)

	thl := 0
	switch p.Kind {
	case KindTCP:
		thl, err = p.TCP.Encode(scratch[ipLen:])
		if err != nil {
			return 0, err
		}
		copy(scratch[ipLen+thl:], seed[:seedLen])
		seg := scratch[ipLen : ipLen+thl+seedLen]
		// Zero the checksum field, then compute over the logical
		// full-length segment.
		seg[16], seg[17] = 0, 0
		sum := pseudoHeaderSum(p.IP.Src, p.IP.Dst, ProtoTCP, uint16(thl+p.PayloadLen))
		ck := Checksum(seg, sum)
		binary.BigEndian.PutUint16(seg[16:18], ck)
		p.TCP.Checksum = ck
	case KindUDP:
		p.UDP.Length = uint16(UDPHeaderLen + p.PayloadLen)
		thl, err = p.UDP.Encode(scratch[ipLen:])
		if err != nil {
			return 0, err
		}
		copy(scratch[ipLen+thl:], seed[:seedLen])
		seg := scratch[ipLen : ipLen+thl+seedLen]
		seg[6], seg[7] = 0, 0
		sum := pseudoHeaderSum(p.IP.Src, p.IP.Dst, ProtoUDP, uint16(thl+p.PayloadLen))
		ck := Checksum(seg, sum)
		if ck == 0 {
			ck = 0xffff
		}
		binary.BigEndian.PutUint16(seg[6:8], ck)
		p.UDP.Checksum = ck
	case KindICMP:
		thl, err = p.ICMP.Encode(scratch[ipLen:])
		if err != nil {
			return 0, err
		}
		copy(scratch[ipLen+thl:], seed[:seedLen])
		seg := scratch[ipLen : ipLen+thl+seedLen]
		seg[2], seg[3] = 0, 0
		ck := Checksum(seg, 0)
		binary.BigEndian.PutUint16(seg[2:4], ck)
		p.ICMP.Checksum = ck
	}
	head := ipLen + thl + seedLen
	if head > max {
		head = max
	}
	n := copy(buf, scratch[:head])
	// Zero-fill any remaining requested bytes (payload tail).
	for n < max {
		buf[n] = 0
		n++
	}
	return n, nil
}

// TransportChecksum returns the transport-layer checksum, the paper's
// stand-in for payload identity in 40-byte snapshots. It returns 0
// when no transport header was parsed.
func (p *Packet) TransportChecksum() uint16 {
	switch p.Kind {
	case KindTCP:
		return p.TCP.Checksum
	case KindUDP:
		return p.UDP.Checksum
	case KindICMP:
		return p.ICMP.Checksum
	default:
		return 0
	}
}

// SrcPort returns the transport source port, or 0 when not applicable.
func (p *Packet) SrcPort() uint16 {
	switch p.Kind {
	case KindTCP:
		return p.TCP.SrcPort
	case KindUDP:
		return p.UDP.SrcPort
	default:
		return 0
	}
}

// DstPort returns the transport destination port, or 0 when not
// applicable.
func (p *Packet) DstPort() uint16 {
	switch p.Kind {
	case KindTCP:
		return p.TCP.DstPort
	case KindUDP:
		return p.UDP.DstPort
	default:
		return 0
	}
}
