package packet

import (
	"encoding/binary"
	"fmt"
)

// IP protocol numbers for the transport protocols the analysis cares
// about.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options. The
// traces in the paper carry no options, and the simulator never
// generates them, but the decoder honours IHL anyway.
const IPv4HeaderLen = 20

// IPv4Header is a decoded IPv4 header.
type IPv4Header struct {
	Version     uint8
	IHL         uint8 // header length in 32-bit words
	TOS         uint8
	TotalLength uint16
	ID          uint16
	Flags       uint8 // 3 bits: reserved, DF, MF
	FragOffset  uint16
	TTL         uint8
	Protocol    uint8
	Checksum    uint16
	Src, Dst    Addr
}

// IPv4 flag bits.
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

// HeaderLen returns the header length in bytes implied by IHL.
func (h *IPv4Header) HeaderLen() int { return int(h.IHL) * 4 }

// DecodeIPv4 parses an IPv4 header from the front of data.
func DecodeIPv4(data []byte) (IPv4Header, error) {
	var h IPv4Header
	if len(data) < IPv4HeaderLen {
		return h, fmt.Errorf("packet: IPv4 header truncated: %d bytes", len(data))
	}
	h.Version = data[0] >> 4
	if h.Version != 4 {
		return h, fmt.Errorf("packet: not IPv4 (version %d)", h.Version)
	}
	h.IHL = data[0] & 0x0f
	if h.IHL < 5 {
		return h, fmt.Errorf("packet: bad IHL %d", h.IHL)
	}
	if len(data) < h.HeaderLen() {
		return h, fmt.Errorf("packet: IPv4 options truncated")
	}
	h.TOS = data[1]
	h.TotalLength = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	return h, nil
}

// Encode serialises the header into buf, which must be at least
// HeaderLen() bytes, and writes a freshly computed header checksum
// both into buf and into h.Checksum. It returns the number of bytes
// written.
func (h *IPv4Header) Encode(buf []byte) (int, error) {
	if h.IHL == 0 {
		h.IHL = 5
	}
	n := h.HeaderLen()
	if len(buf) < n {
		return 0, fmt.Errorf("packet: buffer too small for IPv4 header: %d < %d", len(buf), n)
	}
	if h.Version == 0 {
		h.Version = 4
	}
	buf[0] = h.Version<<4 | h.IHL
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], h.TotalLength)
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	buf[10], buf[11] = 0, 0
	copy(buf[12:16], h.Src[:])
	copy(buf[16:20], h.Dst[:])
	for i := IPv4HeaderLen; i < n; i++ {
		buf[i] = 0
	}
	h.Checksum = Checksum(buf[:n], 0)
	binary.BigEndian.PutUint16(buf[10:12], h.Checksum)
	return n, nil
}

// VerifyChecksum reports whether the stored header checksum matches a
// recomputation over data (which must hold at least the full header).
func (h *IPv4Header) VerifyChecksum(data []byte) bool {
	n := h.HeaderLen()
	if len(data) < n {
		return false
	}
	// Checksumming the header including the stored checksum yields 0
	// when valid.
	return Checksum(data[:n], 0) == 0
}
