package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the packet decoder: it
// must never panic, and whatever decodes must re-serialize to
// something that decodes to the same header fields.
func FuzzDecode(f *testing.F) {
	// Seed with a valid TCP snapshot and some truncations.
	p := mk(7, 63, 1234)
	buf := make([]byte, 40)
	if _, err := p.Serialize(buf, 40); err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add(buf[:20])
	f.Add(buf[:21])
	f.Add([]byte{})
	f.Add([]byte{0x45})
	udp := Packet{
		IP: IPv4Header{Version: 4, IHL: 5, TTL: 1, Protocol: ProtoUDP,
			Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8), ID: 9},
		Kind: KindUDP, UDP: UDPHeader{SrcPort: 53, DstPort: 53},
		HasTransport: true, PayloadLen: 0,
	}
	ubuf := make([]byte, udp.WireLen())
	if _, err := udp.Serialize(ubuf, len(ubuf)); err != nil {
		f.Fatal(err)
	}
	f.Add(ubuf)

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data)
		if err != nil {
			return
		}
		// A decodable packet classifies and masks without panicking.
		_ = Classify(&pkt)
		_ = pkt.TransportChecksum()
		_ = pkt.SrcPort()
		_ = pkt.DstPort()
		// Header length never exceeds the captured bytes.
		if pkt.IP.HeaderLen() > len(data) {
			t.Fatalf("header length %d > capture %d", pkt.IP.HeaderLen(), len(data))
		}
	})
}

// FuzzSerializeRoundTrip: any in-range header combination must
// serialize and decode back to itself.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint8(64), uint64(42), uint8(6), uint16(800))
	f.Add(uint16(0xffff), uint8(1), uint64(0), uint8(17), uint16(0))
	f.Add(uint16(0), uint8(255), uint64(1<<63), uint8(1), uint16(1400))
	f.Fuzz(func(t *testing.T, id uint16, ttlRaw uint8, seed uint64, protoRaw uint8, payRaw uint16) {
		ttl := ttlRaw%255 + 1
		pay := int(payRaw % 1460)
		p := Packet{
			IP: IPv4Header{
				Version: 4, IHL: 5, TTL: ttl,
				Src: AddrFromUint32(uint32(seed)), Dst: AddrFromUint32(uint32(seed >> 32)),
				ID: id,
			},
			PayloadLen:  pay,
			PayloadSeed: seed,
		}
		switch protoRaw % 4 {
		case 0:
			p.Kind, p.IP.Protocol = KindTCP, ProtoTCP
			p.TCP = TCPHeader{SrcPort: id, DstPort: ^id, DataOffset: 5, Flags: uint8(seed) & 0x3f}
			p.HasTransport = true
		case 1:
			p.Kind, p.IP.Protocol = KindUDP, ProtoUDP
			p.UDP = UDPHeader{SrcPort: id, DstPort: ^id}
			p.HasTransport = true
		case 2:
			p.Kind, p.IP.Protocol = KindICMP, ProtoICMP
			p.ICMP = ICMPHeader{Type: uint8(seed >> 8), Code: uint8(seed >> 16), Rest: uint32(seed)}
			p.HasTransport = true
		default:
			p.Kind, p.IP.Protocol = KindOther, 47
		}
		buf := make([]byte, p.WireLen())
		n, err := p.Serialize(buf, len(buf))
		if err != nil {
			t.Fatalf("serialize: %v", err)
		}
		if n != p.WireLen() {
			t.Fatalf("wrote %d of %d", n, p.WireLen())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode of own output: %v", err)
		}
		if got.IP.ID != id || got.IP.TTL != ttl || got.Kind != p.Kind {
			t.Fatalf("round trip mismatch: %+v", got.IP)
		}
		if !got.IP.VerifyChecksum(buf) {
			t.Fatal("bad IP checksum in own output")
		}
		// Truncated snapshot agrees byte-for-byte with the prefix.
		if len(buf) > 40 {
			p2 := p
			snap := make([]byte, 40)
			if _, err := p2.Serialize(snap, 40); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, buf[:40]) {
				t.Fatal("snapshot diverges from full serialization")
			}
		}
	})
}
