package packet

import (
	"testing"
	"testing/quick"
)

func TestChecksumRFC1071(t *testing.T) {
	// Worked example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd-length buffer is padded with a virtual zero byte.
	odd := Checksum([]byte{0x12, 0x34, 0x56}, 0)
	padded := Checksum([]byte{0x12, 0x34, 0x56, 0x00}, 0)
	if odd != padded {
		t.Errorf("odd-length checksum %#04x != zero-padded %#04x", odd, padded)
	}
}

func TestChecksumZeroTailInvariant(t *testing.T) {
	// Appending zero bytes never changes the checksum — the property
	// the seed-based payload serialization relies on.
	base := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	want := Checksum(base, 0)
	withTail := append(append([]byte{}, base...), make([]byte, 100)...)
	if got := Checksum(withTail, 0); got != want {
		t.Errorf("zero tail changed checksum: %#04x != %#04x", got, want)
	}
}

func TestAddrRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.1.2.3", "255.255.255.255", "192.0.2.1"} {
		a, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		if a.String() != s {
			t.Errorf("round trip %q -> %q", s, a.String())
		}
	}
}

func TestAddrParseErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1..2.3", "a.b.c.d", "1.2.3.4 "} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrMulticast(t *testing.T) {
	if !MustParseAddr("224.0.0.1").IsMulticast() {
		t.Error("224.0.0.1 should be multicast")
	}
	if !MustParseAddr("239.255.255.255").IsMulticast() {
		t.Error("239.255.255.255 should be multicast")
	}
	if MustParseAddr("223.255.255.255").IsMulticast() {
		t.Error("223.255.255.255 should not be multicast")
	}
	if MustParseAddr("240.0.0.1").IsMulticast() {
		t.Error("240.0.0.1 should not be multicast")
	}
}

func TestIPv4EncodeDecodeRoundTrip(t *testing.T) {
	h := IPv4Header{
		Version: 4, IHL: 5, TOS: 0x10, TotalLength: 1500,
		ID: 0xbeef, Flags: FlagDF, FragOffset: 0,
		TTL: 61, Protocol: ProtoTCP,
		Src: MustParseAddr("10.1.2.3"), Dst: MustParseAddr("192.0.2.200"),
	}
	var buf [20]byte
	n, err := h.Encode(buf[:])
	if err != nil || n != 20 {
		t.Fatalf("Encode: n=%d err=%v", n, err)
	}
	got, err := DecodeIPv4(buf[:])
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != h {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if !got.VerifyChecksum(buf[:]) {
		t.Error("header checksum does not verify")
	}
	// Corrupt a byte: checksum must fail.
	buf[9] ^= 0xff
	if c, _ := DecodeIPv4(buf[:]); c.VerifyChecksum(buf[:]) {
		t.Error("corrupted header still verifies")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	if _, err := DecodeIPv4(make([]byte, 19)); err == nil {
		t.Error("truncated header decoded")
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if _, err := DecodeIPv4(bad); err == nil {
		t.Error("IPv6 version accepted")
	}
	bad[0] = 0x43 // IHL 3 < 5
	if _, err := DecodeIPv4(bad); err == nil {
		t.Error("IHL 3 accepted")
	}
	opt := make([]byte, 20)
	opt[0] = 0x46 // IHL 6 => 24 bytes needed
	if _, err := DecodeIPv4(opt); err == nil {
		t.Error("truncated options accepted")
	}
}

func TestIPv4FragmentFields(t *testing.T) {
	h := IPv4Header{Version: 4, IHL: 5, Flags: FlagMF, FragOffset: 0x1234 & 0x1fff, TTL: 1, Protocol: ProtoUDP}
	var buf [20]byte
	if _, err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIPv4(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != FlagMF || got.FragOffset != h.FragOffset {
		t.Errorf("fragment fields: got flags=%d off=%d", got.Flags, got.FragOffset)
	}
}

func TestTCPEncodeDecodeRoundTrip(t *testing.T) {
	h := TCPHeader{
		SrcPort: 443, DstPort: 51515, Seq: 0xdeadbeef, Ack: 0x01020304,
		DataOffset: 5, Flags: TCPSyn | TCPAck, Window: 8192, Checksum: 0xabcd, Urgent: 7,
	}
	var buf [20]byte
	if _, err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTCP(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if _, err := DecodeTCP(buf[:19]); err == nil {
		t.Error("truncated TCP header decoded")
	}
}

func TestUDPEncodeDecodeRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 53, DstPort: 33434, Length: 80, Checksum: 0x1111}
	var buf [8]byte
	if _, err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUDP(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip mismatch: got %+v want %+v", got, h)
	}
}

func TestICMPEncodeDecodeRoundTrip(t *testing.T) {
	h := ICMPHeader{Type: ICMPTimeExceeded, Code: 0, Rest: 0xfeedface}
	var buf [8]byte
	if _, err := h.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	ComputeICMPChecksum(buf[:])
	got, err := DecodeICMP(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != h.Type || got.Code != h.Code || got.Rest != h.Rest {
		t.Errorf("round trip mismatch: got %+v want %+v", got, h)
	}
	if got.Checksum == 0 {
		t.Error("checksum not stored")
	}
}

// mk returns a TCP packet with the given identity fields.
func mk(id uint16, ttl uint8, seed uint64) Packet {
	return Packet{
		IP: IPv4Header{
			Version: 4, IHL: 5, TTL: ttl, Protocol: ProtoTCP,
			Src: MustParseAddr("10.9.8.7"), Dst: MustParseAddr("198.51.100.4"), ID: id,
		},
		Kind: KindTCP,
		TCP: TCPHeader{
			SrcPort: 1234, DstPort: 80, Seq: 99, Flags: TCPAck,
			DataOffset: 5, Window: 1024,
		},
		HasTransport: true,
		PayloadLen:   256,
		PayloadSeed:  seed,
	}
}

func TestPacketSerializeDecodeRoundTrip(t *testing.T) {
	p := mk(42, 61, 0x1122334455667788)
	buf := make([]byte, p.WireLen())
	n, err := p.Serialize(buf, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	if n != p.WireLen() {
		t.Fatalf("serialized %d bytes, want %d", n, p.WireLen())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst || got.IP.ID != p.IP.ID ||
		got.IP.TTL != p.IP.TTL || got.Kind != KindTCP || !got.HasTransport {
		t.Errorf("decode mismatch: %+v", got)
	}
	if got.PayloadLen != p.PayloadLen {
		t.Errorf("payload length %d, want %d", got.PayloadLen, p.PayloadLen)
	}
	if !got.IP.VerifyChecksum(buf) {
		t.Error("IP checksum does not verify")
	}
}

func TestPacketTruncatedSnapshotKeepsChecksums(t *testing.T) {
	// The 40-byte snapshot must carry the same transport checksum the
	// full packet would have — that is what lets the detector treat
	// the checksum as payload identity.
	p1 := mk(42, 61, 7)
	full := make([]byte, p1.WireLen())
	if _, err := p1.Serialize(full, len(full)); err != nil {
		t.Fatal(err)
	}
	p2 := mk(42, 61, 7)
	snap := make([]byte, 40)
	n, err := p2.Serialize(snap, 40)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("snapshot %d bytes, want 40", n)
	}
	for i := 0; i < 40; i++ {
		if full[i] != snap[i] {
			t.Fatalf("byte %d differs between full packet and snapshot", i)
		}
	}
}

func TestPacketChecksumReflectsSeed(t *testing.T) {
	// Distinct payload seeds must produce distinct transport
	// checksums (almost surely) — the payload-identity signal.
	a, b := mk(1, 64, 100), mk(1, 64, 101)
	ba := make([]byte, 40)
	bb := make([]byte, 40)
	if _, err := a.Serialize(ba, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Serialize(bb, 40); err != nil {
		t.Fatal(err)
	}
	if a.TCP.Checksum == b.TCP.Checksum {
		t.Errorf("different seeds gave identical checksums %#04x", a.TCP.Checksum)
	}
}

func TestPacketTTLIndependentChecksum(t *testing.T) {
	// Replicas differ only in TTL and IP checksum: serialize the same
	// packet at two TTLs and compare everything else.
	a, b := mk(9, 64, 55), mk(9, 60, 55)
	ba := make([]byte, 40)
	bb := make([]byte, 40)
	if _, err := a.Serialize(ba, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Serialize(bb, 40); err != nil {
		t.Fatal(err)
	}
	for i := range ba {
		same := ba[i] == bb[i]
		switch {
		case i == 8 || i == 10 || i == 11: // TTL, IP checksum
			// allowed to differ
		case !same:
			t.Errorf("byte %d differs between TTL replicas", i)
		}
	}
	if a.TCP.Checksum != b.TCP.Checksum {
		t.Error("TCP checksum depends on TTL")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		pkt  Packet
		want ClassMask
	}{
		{"syn-ack", Packet{Kind: KindTCP, HasTransport: true,
			TCP: TCPHeader{Flags: TCPSyn | TCPAck}},
			ClassTCP | ClassSYN | ClassACK},
		{"fin-ack-psh", Packet{Kind: KindTCP, HasTransport: true,
			TCP: TCPHeader{Flags: TCPFin | TCPAck | TCPPsh}},
			ClassTCP | ClassFIN | ClassACK | ClassPSH},
		{"rst", Packet{Kind: KindTCP, HasTransport: true,
			TCP: TCPHeader{Flags: TCPRst}},
			ClassTCP | ClassRST},
		{"urg", Packet{Kind: KindTCP, HasTransport: true,
			TCP: TCPHeader{Flags: TCPUrg | TCPAck}},
			ClassTCP | ClassURG | ClassACK},
		{"udp", Packet{Kind: KindUDP, HasTransport: true}, ClassUDP},
		{"udp-mcast", Packet{Kind: KindUDP, HasTransport: true,
			IP: IPv4Header{Dst: MustParseAddr("224.0.0.5")}},
			ClassUDP | ClassMcast},
		{"icmp", Packet{Kind: KindICMP, HasTransport: true}, ClassICMP},
		{"other", Packet{Kind: KindOther}, ClassOther},
	}
	for _, c := range cases {
		if got := Classify(&c.pkt); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassMaskString(t *testing.T) {
	m := ClassTCP | ClassSYN | ClassACK
	if s := m.String(); s != "TCP+ACK+SYN" {
		t.Errorf("String = %q", s)
	}
	if s := ClassMask(0).String(); s != "NONE" {
		t.Errorf("zero mask String = %q", s)
	}
}

func TestClassIndex(t *testing.T) {
	for i := 0; i < numClasses; i++ {
		if got := ClassIndex(1 << i); got != i {
			t.Errorf("ClassIndex(1<<%d) = %d", i, got)
		}
	}
	if ClassIndex(ClassTCP|ClassACK) != -1 {
		t.Error("multi-bit mask should map to -1")
	}
}

func TestDecodeTruncatedTransport(t *testing.T) {
	// Only the IP header captured: HasTransport must be false, but
	// decode succeeds.
	p := mk(5, 50, 1)
	buf := make([]byte, 20)
	if _, err := p.Serialize(buf, 20); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasTransport {
		t.Error("transport header claimed present in 20-byte snapshot")
	}
	if got.Kind != KindTCP {
		t.Errorf("kind = %v, want TCP (from protocol field)", got.Kind)
	}
}

// TestSerializeDecodeQuick drives random header fields through a
// serialize/decode cycle.
func TestSerializeDecodeQuick(t *testing.T) {
	f := func(id uint16, ttlRaw uint8, seed uint64, sport, dport uint16, payRaw uint16) bool {
		ttl := ttlRaw%254 + 1
		pay := int(payRaw % 1400)
		p := Packet{
			IP: IPv4Header{
				Version: 4, IHL: 5, TTL: ttl, Protocol: ProtoUDP,
				Src: AddrFromUint32(uint32(id) * 2654435761),
				Dst: AddrFromUint32(uint32(seed)), ID: id,
			},
			Kind:         KindUDP,
			UDP:          UDPHeader{SrcPort: sport, DstPort: dport},
			HasTransport: true,
			PayloadLen:   pay,
			PayloadSeed:  seed,
		}
		buf := make([]byte, p.WireLen())
		if _, err := p.Serialize(buf, len(buf)); err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.IP.ID == id && got.IP.TTL == ttl &&
			got.UDP.SrcPort == sport && got.UDP.DstPort == dport &&
			got.PayloadLen == pay && got.IP.VerifyChecksum(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
