package netsim

import (
	"testing"

	"loopscope/internal/packet"
	"loopscope/internal/routing"
)

func TestSnapshotFIBs(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	c := n.AddRouter("c", packet.AddrFrom(10, 0, 0, 3))
	n.Connect(a, b, DefaultLinkParams())
	n.Connect(b, c, DefaultLinkParams())

	dst := routing.MustParsePrefix("192.0.2.0/24")
	a.SetRoute(dst, b.ID)
	b.SetRoute(dst, c.ID)
	c.AttachPrefix(dst)

	snap := n.SnapshotFIBs()
	if len(snap.Routers) != 3 {
		t.Fatalf("routers = %d, want 3", len(snap.Routers))
	}
	if snap.At != n.Sim.Now() {
		t.Errorf("At = %v, want %v", snap.At, n.Sim.Now())
	}
	ra := snap.Routers[0]
	if ra.Name != "a" || ra.ID != a.ID {
		t.Fatalf("router 0 = %q/%d, want a", ra.Name, ra.ID)
	}
	if ra.Revision != a.FIBRevision() || ra.Revision == 0 {
		t.Errorf("a revision = %d, want %d (non-zero)", ra.Revision, a.FIBRevision())
	}
	found := false
	for _, e := range ra.Routes {
		if e.Prefix == dst && e.Value == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("a's snapshot lacks %v -> b: %v", dst, ra.Routes)
	}
	rc := snap.Routers[2]
	hasLocal := false
	for _, p := range rc.Locals {
		if p == dst {
			hasLocal = true
		}
	}
	if !hasLocal {
		t.Errorf("c's snapshot lacks local %v: %v", dst, rc.Locals)
	}

	// The snapshot must be detached from the live FIB: mutating the
	// network afterwards may not alter it.
	before := len(ra.Routes)
	a.RemoveRoute(dst)
	if len(snap.Routers[0].Routes) != before {
		t.Error("snapshot aliases the live FIB")
	}

	// Revisions advance, and RevisionSum tracks the change.
	snap2 := n.SnapshotFIBs()
	if snap2.Routers[0].Revision <= ra.Revision {
		t.Errorf("revision did not advance: %d -> %d", ra.Revision, snap2.Routers[0].Revision)
	}
	if snap2.RevisionSum() <= snap.RevisionSum() {
		t.Errorf("RevisionSum %d -> %d, want increase", snap.RevisionSum(), snap2.RevisionSum())
	}
}
