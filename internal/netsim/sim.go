// Package netsim is a discrete-event simulator of an IP network: a
// virtual clock, routers that forward packets through longest-prefix-
// match FIBs with TTL decrement and ICMP error generation, and links
// with finite bandwidth, propagation delay and FIFO queues.
//
// It stands in for the Sprint backbone the paper measured. Routing
// protocols (internal/routing/igp, internal/routing/bgp) drive FIB
// updates with realistic timing skew, which is what creates the
// transient forwarding loops the detector looks for. The simulator
// also records ground truth — every packet that revisits a router —
// so detector accuracy can be verified, something the paper could not
// do without router update logs.
package netsim

import (
	"container/heap"
	"time"
)

// Time is simulated time, measured from the start of the run.
type Time = time.Duration

// event is one scheduled callback. seq breaks ties so that events
// scheduled earlier at the same instant run first (deterministic
// replay).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Simulator owns the virtual clock and the pending event queue.
type Simulator struct {
	now    Time
	queue  eventHeap
	seq    uint64
	events uint64
}

// NewSimulator returns a simulator at time zero with no pending
// events.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// EventsRun returns the number of events executed so far.
func (s *Simulator) EventsRun() uint64 { return s.events }

// Schedule runs fn after delay. A negative delay is treated as zero.
func (s *Simulator) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times before Now() are
// clamped to Now().
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.queue.pushEvent(event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// Run executes events until the queue is empty or the next event is
// after until. The clock finishes at until.
func (s *Simulator) Run(until Time) {
	for len(s.queue) > 0 && s.queue.peek().at <= until {
		e := s.queue.popEvent()
		s.now = e.at
		s.events++
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Step executes the single next event, if any, and reports whether one
// ran.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.popEvent()
	s.now = e.at
	s.events++
	e.fn()
	return true
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }
