package netsim

import (
	"loopscope/internal/packet"
	"loopscope/internal/routing"
)

// Router is one forwarding node. Its FIB maps destination prefixes to
// outgoing links; routing protocols mutate the FIB via SetRoute /
// RemoveRoute as their own timers fire, which is what produces
// transient forwarding loops.
type Router struct {
	net  *Network
	ID   NodeID
	Name string
	// Loopback is the router's own address, used as the source of the
	// ICMP errors it generates.
	Loopback packet.Addr

	fib   *routing.Table[*Link]
	local *routing.Table[struct{}]
	links []*Link

	lastICMP    Time
	icmpPrimed  bool
	onLinkDown  []func(*Link)
	onLinkUp    []func(*Link)
	fibRevision uint64
}

// Links returns the router's outgoing links.
func (r *Router) Links() []*Link { return r.links }

// LinkTo returns the outgoing link whose far end is the given router,
// or nil.
func (r *Router) LinkTo(id NodeID) *Link {
	for _, l := range r.links {
		if l.To.ID == id {
			return l
		}
	}
	return nil
}

// Neighbors returns the IDs of routers reachable over one (currently
// existing, regardless of up/down state) link.
func (r *Router) Neighbors() []NodeID {
	out := make([]NodeID, 0, len(r.links))
	for _, l := range r.links {
		out = append(out, l.To.ID)
	}
	return out
}

// AttachPrefix marks prefix as locally delivered at this router (a
// customer network or peering exit hanging off it).
func (r *Router) AttachPrefix(p routing.Prefix) {
	r.local.Insert(p, struct{}{})
}

// LocalPrefixes returns the prefixes attached to this router.
func (r *Router) LocalPrefixes() []routing.Prefix {
	var out []routing.Prefix
	r.local.Walk(func(p routing.Prefix, _ struct{}) bool {
		out = append(out, p)
		return true
	})
	return out
}

// SetRoute points prefix at the link towards the via router. It
// applies immediately: protocols model FIB-update latency by delaying
// the call. Setting a route towards a node with no link panics — that
// is a protocol bug, not a runtime condition.
func (r *Router) SetRoute(p routing.Prefix, via NodeID) {
	l := r.LinkTo(via)
	if l == nil {
		panic("netsim: SetRoute towards non-neighbor " + r.net.Router(via).Name)
	}
	r.fib.Insert(p, l)
	r.fibRevision++
}

// RemoveRoute deletes the FIB entry for prefix.
func (r *Router) RemoveRoute(p routing.Prefix) {
	r.fib.Remove(p)
	r.fibRevision++
}

// RouteVia returns the neighbor the FIB currently points at for an
// address, for tests and protocol debugging.
func (r *Router) RouteVia(addr packet.Addr) (NodeID, bool) {
	l, _, ok := r.fib.Lookup(addr)
	if !ok {
		return 0, false
	}
	return l.To.ID, true
}

// FIBRevision increments on every FIB change; the ground-truth
// recorder uses it to bound loop windows.
func (r *Router) FIBRevision() uint64 { return r.fibRevision }

// OnLinkDown registers a callback invoked (after the link's detection
// delay) when an attached outgoing link fails.
func (r *Router) OnLinkDown(fn func(*Link)) { r.onLinkDown = append(r.onLinkDown, fn) }

// OnLinkUp registers a callback invoked when an attached outgoing link
// is repaired.
func (r *Router) OnLinkUp(fn func(*Link)) { r.onLinkUp = append(r.onLinkUp, fn) }

// receive handles a packet arriving at (or injected into) the router.
func (r *Router) receive(tp *TransitPacket) {
	// Local delivery?
	if _, _, ok := r.local.Lookup(tp.Pkt.IP.Dst); ok {
		r.net.deliver(r, tp)
		return
	}
	// Transit: record the visit and detect forwarding cycles.
	if size, looped := tp.revisit(r.ID); looped {
		tp.LoopCount++
		if tp.LoopSize == 0 {
			tp.LoopSize = size
		}
		r.net.recordLoop(GroundTruthLoop{
			At:       r.net.Sim.Now(),
			Node:     r.ID,
			Dst:      tp.Pkt.IP.Dst,
			LoopSize: size,
			UID:      tp.UID,
		})
	}
	tp.Visited = append(tp.Visited, r.ID)
	tp.Hops++

	if tp.Pkt.IP.TTL <= 1 {
		tp.Pkt.IP.TTL = 0
		r.net.drop(tp, DropTTLExpired)
		r.maybeSendTimeExceeded(tp)
		return
	}
	tp.Pkt.IP.TTL--

	l, _, ok := r.fib.Lookup(tp.Pkt.IP.Dst)
	if !ok {
		r.net.drop(tp, DropNoRoute)
		return
	}
	l.send(tp)
}

// maybeSendTimeExceeded emits an ICMP time-exceeded error towards the
// expired packet's source, subject to the router's ICMP rate limit.
// Errors are never generated about ICMP errors (RFC 1812).
func (r *Router) maybeSendTimeExceeded(tp *TransitPacket) {
	if tp.Pkt.Kind == packet.KindICMP {
		t := tp.Pkt.ICMP.Type
		if t == packet.ICMPTimeExceeded || t == packet.ICMPUnreachable {
			return
		}
	}
	now := r.net.Sim.Now()
	if r.icmpPrimed && now-r.lastICMP < r.net.ICMPMinInterval {
		return
	}
	r.lastICMP = now
	r.icmpPrimed = true

	icmp := packet.Packet{
		IP: packet.IPv4Header{
			Version:  4,
			IHL:      5,
			TTL:      255,
			Protocol: packet.ProtoICMP,
			Src:      r.Loopback,
			Dst:      tp.Pkt.IP.Src,
			ID:       r.net.nextIPID(),
		},
		Kind:         packet.KindICMP,
		ICMP:         packet.ICMPHeader{Type: packet.ICMPTimeExceeded},
		HasTransport: true,
		// Original IP header + first 8 bytes of its payload.
		PayloadLen:  packet.IPv4HeaderLen + 8,
		PayloadSeed: tp.UID,
	}
	r.net.Inject(r, icmp)
}
