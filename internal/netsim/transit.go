package netsim

import (
	"loopscope/internal/packet"
)

// NodeID identifies a router within a Network.
type NodeID int

// TransitPacket is a packet in flight through the simulator, carrying
// the forwarding metadata needed for ground truth and impact analysis.
type TransitPacket struct {
	Pkt packet.Packet
	// UID uniquely identifies the packet within a run (ICMP errors
	// get fresh UIDs).
	UID uint64
	// Injected is when the packet entered the network.
	Injected Time
	// Hops counts forwarding operations performed on the packet.
	Hops int
	// Visited lists the routers that forwarded the packet, in order.
	Visited []NodeID
	// LoopCount is the number of times the packet revisited a router
	// it had already passed through.
	LoopCount int
	// LoopSize is the router count of the first loop the packet was
	// caught in (distance between the two visits), 0 if never looped.
	LoopSize int
	// OnFate, when set, is invoked once with the packet's final
	// outcome. The traffic generator uses it to emulate closed-loop
	// transport behaviour (TCP stalls when its packets die in a
	// loop).
	OnFate func(Fate)
}

// revisit records a visit to node and reports whether it closes a
// forwarding cycle, returning the cycle length when it does.
func (tp *TransitPacket) revisit(node NodeID) (int, bool) {
	for i := len(tp.Visited) - 1; i >= 0; i-- {
		if tp.Visited[i] == node {
			return len(tp.Visited) - i, true
		}
	}
	return 0, false
}

// DropReason classifies why the simulator discarded a packet.
type DropReason int

// Drop reasons.
const (
	DropTTLExpired DropReason = iota
	DropNoRoute
	DropQueueFull
	DropLinkDown
	DropLineError
	numDropReasons
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropTTLExpired:
		return "ttl-expired"
	case DropNoRoute:
		return "no-route"
	case DropQueueFull:
		return "queue-full"
	case DropLinkDown:
		return "link-down"
	case DropLineError:
		return "line-error"
	default:
		return "unknown"
	}
}

// Fate records the final outcome of one packet.
type Fate struct {
	UID       uint64
	Delivered bool
	Reason    DropReason // valid when !Delivered
	At        Time
	Delay     Time // At - Injected
	Hops      int
	LoopCount int
	LoopSize  int
	Src       packet.Addr
	Dst       packet.Addr
	Class     packet.ClassMask
}

// GroundTruthLoop is one observed forwarding-cycle event: a packet
// revisited a router. The recorder aggregates these by destination /24
// to form ground-truth loop intervals comparable with detector output.
type GroundTruthLoop struct {
	At       Time
	Node     NodeID
	Dst      packet.Addr
	LoopSize int
	UID      uint64
}
