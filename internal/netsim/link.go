package netsim

import (
	"fmt"
	"time"
)

// Tap observes packets crossing a link, timestamped at the instant the
// last bit leaves the transmitting router — the same observation point
// as an optical splitter feeding a capture card.
type Tap func(at Time, tp *TransitPacket)

// Link is one unidirectional link. Connect creates them in pairs;
// Reverse points at the opposite direction.
type Link struct {
	net     *Network
	Name    string
	From    *Router
	To      *Router
	Reverse *Link

	// Bandwidth is the link rate in bits per second.
	Bandwidth float64
	// PropDelay is the one-way propagation delay.
	PropDelay Time
	// QueueLimit caps the number of packets queued or in
	// transmission; arrivals beyond it are tail-dropped.
	QueueLimit int
	// DetectDelay is how long the transmitting router takes to detect
	// a failure of this link.
	DetectDelay Time
	// IGPCost is the routing metric of this direction. Asymmetric
	// costs are common traffic engineering and are what lets
	// transient loops longer than two hops cross a single link.
	IGPCost int
	// LossRate is the probability a packet is lost on this direction
	// (line errors); the background against which loop loss is
	// measured.
	LossRate float64
	// ProcJitter adds a deterministic per-packet forwarding-latency
	// jitter in [0, ProcJitter): lookup and switching-fabric variance.
	// It is derived by hashing the packet UID with the link name, so
	// simulations stay reproducible. The paper's Figure 8 notes this
	// kind of "random noise" blurs the duration steps.
	ProcJitter Time

	nameHash uint64

	up        bool
	busyUntil Time
	inQueue   int
	taps      []Tap
}

// Up reports whether the link is currently up.
func (l *Link) Up() bool { return l.up }

// QueueDepth returns the number of packets queued or in transmission.
func (l *Link) QueueDepth() int { return l.inQueue }

// AddTap registers a tap on this link.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// txTime returns the serialisation delay of wireLen bytes.
func (l *Link) txTime(wireLen int) Time {
	return time.Duration(float64(wireLen*8) / l.Bandwidth * float64(time.Second))
}

// send queues tp for transmission. Drops (link down, full queue) are
// accounted against the network.
func (l *Link) send(tp *TransitPacket) {
	sim := l.net.Sim
	if !l.up {
		l.net.drop(tp, DropLinkDown)
		return
	}
	if l.inQueue >= l.QueueLimit {
		l.net.drop(tp, DropQueueFull)
		return
	}
	if l.LossRate > 0 && l.net.lossRNG.Bool(l.LossRate) {
		l.net.drop(tp, DropLineError)
		return
	}
	l.inQueue++
	now := sim.Now()
	start := now
	if l.ProcJitter > 0 {
		start += l.jitterFor(tp.UID)
	}
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := start + l.txTime(tp.Pkt.WireLen())
	l.busyUntil = end
	sim.At(end, func() {
		l.inQueue--
		for _, tap := range l.taps {
			tap(end, tp)
		}
		// Propagation: the packet is on the fibre; a failure after
		// this point does not destroy it.
		sim.At(end+l.PropDelay, func() {
			l.To.receive(tp)
		})
	})
}

// jitterFor derives the packet's deterministic processing jitter.
func (l *Link) jitterFor(uid uint64) Time {
	if l.nameHash == 0 {
		var h uint64 = 14695981039346656037
		for i := 0; i < len(l.Name); i++ {
			h ^= uint64(l.Name[i])
			h *= 1099511628211
		}
		l.nameHash = h | 1
	}
	z := uid ^ l.nameHash
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return Time(z % uint64(l.ProcJitter))
}

// String identifies the link for logs and errors.
func (l *Link) String() string {
	return fmt.Sprintf("%s->%s", l.From.Name, l.To.Name)
}
