package netsim

import (
	"fmt"
	"time"

	"loopscope/internal/events"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/stats"
)

// LinkParams configures both directions of a Connect call.
type LinkParams struct {
	Bandwidth   float64 // bits per second
	PropDelay   Time
	QueueLimit  int
	DetectDelay Time
	// CostAB and CostBA are the IGP metrics of the two directions
	// created by Connect (zero means 1).
	CostAB, CostBA int
	// LossRate is the per-direction line-error drop probability.
	LossRate float64
	// ProcJitter is the per-packet forwarding-latency jitter bound.
	ProcJitter Time
}

// DefaultLinkParams approximates an OC-12 backbone link: 622 Mbps,
// 1 ms propagation, a 256-packet FIFO, 20 ms failure detection.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		Bandwidth:   622e6,
		PropDelay:   time.Millisecond,
		QueueLimit:  256,
		DetectDelay: 20 * time.Millisecond,
	}
}

// MinuteBucket aggregates per-minute loss accounting (the paper's §VI
// loss analysis is per-minute).
type MinuteBucket struct {
	Injected  uint64
	Delivered uint64
	Drops     [numDropReasons]uint64

	// LoopDrops counts TTL-expiry drops of packets that had been
	// caught in a forwarding cycle — the loss attributable to loops.
	LoopDrops uint64
	// CleanDelivered / CleanDelaySum aggregate never-looped
	// deliveries per minute, for the collateral-delay analysis (§I:
	// loops raise utilization and therefore the delay of traffic that
	// is not itself looping) and as the §VI extra-delay baseline.
	CleanDelivered uint64
	CleanDelaySum  Time
	// LoopEvents counts ground-truth forwarding-cycle observations in
	// the minute.
	LoopEvents uint64
}

// TotalDrops sums all drop reasons.
func (m *MinuteBucket) TotalDrops() uint64 {
	var t uint64
	for _, d := range m.Drops {
		t += d
	}
	return t
}

// Network is a set of routers and links driven by one Simulator.
type Network struct {
	Sim     *Simulator
	routers []*Router
	links   []*Link

	// ICMPMinInterval rate-limits ICMP error generation per router.
	ICMPMinInterval Time
	// EchoReplies controls whether delivered ICMP echo requests
	// generate replies.
	EchoReplies bool
	// OnDeliver, when set, observes every locally delivered packet at
	// its delivery router (host-side instrumentation; the active-
	// probing baseline uses it to receive ICMP errors).
	OnDeliver func(*Router, *TransitPacket)
	// Journal, when set, records link failures/repairs and (via the
	// routing protocols) control-plane activity for loop-cause
	// correlation. A nil journal records nothing.
	Journal *events.Journal

	// FateFilter selects which packet fates to retain in Fates. The
	// default keeps packets that looped and drops the rest (counters
	// still aggregate everything). Set to nil to keep none, or to
	// func(*Fate) bool { return true } to keep all.
	FateFilter func(*Fate) bool
	// Fates holds retained packet outcomes.
	Fates []Fate
	// GroundTruth holds every observed forwarding-cycle event.
	GroundTruth []GroundTruthLoop
	// Minutes holds per-minute loss accounting.
	Minutes []MinuteBucket

	Injected  uint64
	Delivered uint64
	Drops     [numDropReasons]uint64

	// CleanDelivered / CleanDelaySum aggregate the delay of delivered
	// packets that never looped, the baseline for the paper's §VI
	// extra-delay measurement.
	CleanDelivered uint64
	CleanDelaySum  Time
	// EscapedDelivered counts delivered packets that had looped.
	EscapedDelivered uint64

	nextUID uint64
	ipID    uint16
	lossRNG *stats.RNG
}

// NewNetwork returns an empty network on a fresh simulator.
func NewNetwork() *Network {
	n := &Network{
		Sim:             NewSimulator(),
		ICMPMinInterval: 500 * time.Microsecond,
		EchoReplies:     true,
		lossRNG:         stats.NewRNG(0x1055),
	}
	n.FateFilter = func(f *Fate) bool { return f.LoopCount > 0 }
	return n
}

// AddRouter creates a router with the given name and loopback address.
func (n *Network) AddRouter(name string, loopback packet.Addr) *Router {
	r := &Router{
		net:      n,
		ID:       NodeID(len(n.routers)),
		Name:     name,
		Loopback: loopback,
		fib:      routing.NewTable[*Link](),
		local:    routing.NewTable[struct{}](),
	}
	n.routers = append(n.routers, r)
	return r
}

// Router returns the router with the given ID.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// Routers returns all routers in creation order.
func (n *Network) Routers() []*Router { return n.routers }

// Links returns all unidirectional links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Connect creates a bidirectional link between a and b (two
// unidirectional links cross-referenced via Reverse) and returns the
// a→b direction.
func (n *Network) Connect(a, b *Router, p LinkParams) *Link {
	if p.Bandwidth <= 0 {
		panic("netsim: Connect with non-positive bandwidth")
	}
	if p.QueueLimit <= 0 {
		p.QueueLimit = 256
	}
	if p.CostAB <= 0 {
		p.CostAB = 1
	}
	if p.CostBA <= 0 {
		p.CostBA = 1
	}
	ab := &Link{
		net: n, Name: fmt.Sprintf("%s->%s", a.Name, b.Name),
		From: a, To: b, up: true,
		Bandwidth: p.Bandwidth, PropDelay: p.PropDelay,
		QueueLimit: p.QueueLimit, DetectDelay: p.DetectDelay,
		IGPCost: p.CostAB, LossRate: p.LossRate, ProcJitter: p.ProcJitter,
	}
	ba := &Link{
		net: n, Name: fmt.Sprintf("%s->%s", b.Name, a.Name),
		From: b, To: a, up: true,
		Bandwidth: p.Bandwidth, PropDelay: p.PropDelay,
		QueueLimit: p.QueueLimit, DetectDelay: p.DetectDelay,
		IGPCost: p.CostBA, LossRate: p.LossRate, ProcJitter: p.ProcJitter,
	}
	ab.Reverse, ba.Reverse = ba, ab
	a.links = append(a.links, ab)
	b.links = append(b.links, ba)
	n.links = append(n.links, ab, ba)
	return ab
}

// FailLink schedules both directions of l to fail at time at. Each
// endpoint learns of the failure after its direction's DetectDelay.
func (n *Network) FailLink(l *Link, at Time) {
	n.Sim.At(at, func() {
		n.Journal.Append(events.Event{
			At: n.Sim.Now(), Kind: events.LinkFailed, Subject: l.Name,
		})
		for _, dir := range []*Link{l, l.Reverse} {
			dir := dir
			if !dir.up {
				continue
			}
			dir.up = false
			n.Sim.Schedule(dir.DetectDelay, func() {
				n.Journal.Append(events.Event{
					At: n.Sim.Now(), Kind: events.LinkDownDetected,
					Node: dir.From.Name, Subject: dir.Name,
				})
				for _, fn := range dir.From.onLinkDown {
					fn(dir)
				}
			})
		}
	})
}

// RepairLink schedules both directions of l to come back up at time
// at. Endpoints learn of the repair after DetectDelay as well
// (adjacency re-establishment).
func (n *Network) RepairLink(l *Link, at Time) {
	n.Sim.At(at, func() {
		n.Journal.Append(events.Event{
			At: n.Sim.Now(), Kind: events.LinkRepaired, Subject: l.Name,
		})
		for _, dir := range []*Link{l, l.Reverse} {
			dir := dir
			if dir.up {
				continue
			}
			dir.up = true
			n.Sim.Schedule(dir.DetectDelay, func() {
				n.Journal.Append(events.Event{
					At: n.Sim.Now(), Kind: events.LinkUpDetected,
					Node: dir.From.Name, Subject: dir.Name,
				})
				for _, fn := range dir.From.onLinkUp {
					fn(dir)
				}
			})
		}
	})
}

// nextIPID hands out IP identification values for router-generated
// packets.
func (n *Network) nextIPID() uint16 {
	n.ipID++
	return n.ipID
}

// Inject introduces a packet into the network at router r, as if a
// directly attached host (or the router itself) originated it.
func (n *Network) Inject(r *Router, pkt packet.Packet) *TransitPacket {
	n.nextUID++
	tp := &TransitPacket{
		Pkt:      pkt,
		UID:      n.nextUID,
		Injected: n.Sim.Now(),
	}
	n.Injected++
	n.minute().Injected++
	r.receive(tp)
	return tp
}

// minute returns the accounting bucket for the current virtual minute.
func (n *Network) minute() *MinuteBucket {
	idx := int(n.Sim.Now() / time.Minute)
	for len(n.Minutes) <= idx {
		n.Minutes = append(n.Minutes, MinuteBucket{})
	}
	return &n.Minutes[idx]
}

func (n *Network) finishFate(tp *TransitPacket, f Fate) {
	if n.FateFilter != nil && n.FateFilter(&f) {
		n.Fates = append(n.Fates, f)
	}
	if tp.OnFate != nil {
		tp.OnFate(f)
	}
}

// drop accounts for a discarded packet.
func (n *Network) drop(tp *TransitPacket, reason DropReason) {
	n.Drops[reason]++
	m := n.minute()
	m.Drops[reason]++
	if reason == DropTTLExpired && tp.LoopCount > 0 {
		m.LoopDrops++
	}
	now := n.Sim.Now()
	n.finishFate(tp, Fate{
		UID: tp.UID, Delivered: false, Reason: reason,
		At: now, Delay: now - tp.Injected, Hops: tp.Hops,
		LoopCount: tp.LoopCount, LoopSize: tp.LoopSize,
		Src: tp.Pkt.IP.Src, Dst: tp.Pkt.IP.Dst, Class: packet.Classify(&tp.Pkt),
	})
}

// deliver accounts for a packet reaching its destination and triggers
// host-side responses (ICMP echo replies).
func (n *Network) deliver(r *Router, tp *TransitPacket) {
	n.Delivered++
	m := n.minute()
	m.Delivered++
	now := n.Sim.Now()
	if tp.LoopCount == 0 {
		n.CleanDelivered++
		n.CleanDelaySum += now - tp.Injected
		m.CleanDelivered++
		m.CleanDelaySum += now - tp.Injected
	} else {
		n.EscapedDelivered++
	}
	n.finishFate(tp, Fate{
		UID: tp.UID, Delivered: true,
		At: now, Delay: now - tp.Injected, Hops: tp.Hops,
		LoopCount: tp.LoopCount, LoopSize: tp.LoopSize,
		Dst: tp.Pkt.IP.Dst, Class: packet.Classify(&tp.Pkt),
	})
	if n.OnDeliver != nil {
		n.OnDeliver(r, tp)
	}
	if n.EchoReplies && tp.Pkt.Kind == packet.KindICMP &&
		tp.Pkt.HasTransport && tp.Pkt.ICMP.Type == packet.ICMPEchoRequest {
		reply := packet.Packet{
			IP: packet.IPv4Header{
				Version: 4, IHL: 5, TTL: 64,
				Protocol: packet.ProtoICMP,
				Src:      tp.Pkt.IP.Dst, Dst: tp.Pkt.IP.Src,
				ID: n.nextIPID(),
			},
			Kind: packet.KindICMP,
			ICMP: packet.ICMPHeader{
				Type: packet.ICMPEchoReply,
				Rest: tp.Pkt.ICMP.Rest,
			},
			HasTransport: true,
			PayloadLen:   tp.Pkt.PayloadLen,
			PayloadSeed:  tp.Pkt.PayloadSeed,
		}
		n.Inject(r, reply)
	}
}

// recordLoop appends a ground-truth loop observation.
func (n *Network) recordLoop(g GroundTruthLoop) {
	n.GroundTruth = append(n.GroundTruth, g)
	n.minute().LoopEvents++
}

// GroundTruthWindows aggregates ground-truth loop events into per-/24
// loop intervals, directly comparable with detector output: events for
// the same destination /24 separated by less than gap are one loop.
func (n *Network) GroundTruthWindows(gap Time) []LoopWindow {
	byPrefix := make(map[routing.Prefix][]GroundTruthLoop)
	for _, g := range n.GroundTruth {
		p := routing.PrefixOf(g.Dst, 24)
		byPrefix[p] = append(byPrefix[p], g)
	}
	var out []LoopWindow
	for p, evs := range byPrefix {
		// Events were recorded in virtual-time order per prefix.
		cur := LoopWindow{Prefix: p, Start: evs[0].At, End: evs[0].At, Events: 1, MaxLoopSize: evs[0].LoopSize}
		for _, g := range evs[1:] {
			if g.At-cur.End <= gap {
				cur.End = g.At
				cur.Events++
				if g.LoopSize > cur.MaxLoopSize {
					cur.MaxLoopSize = g.LoopSize
				}
			} else {
				out = append(out, cur)
				cur = LoopWindow{Prefix: p, Start: g.At, End: g.At, Events: 1, MaxLoopSize: g.LoopSize}
			}
		}
		out = append(out, cur)
	}
	return out
}

// CleanMeanDelay returns the average delay of delivered packets that
// never looped, or 0 when none were delivered.
func (n *Network) CleanMeanDelay() Time {
	if n.CleanDelivered == 0 {
		return 0
	}
	return n.CleanDelaySum / Time(n.CleanDelivered)
}

// LoopWindow is a ground-truth loop interval for one destination /24.
type LoopWindow struct {
	Prefix      routing.Prefix
	Start, End  Time
	Events      int
	MaxLoopSize int
}

// Duration returns the window length.
func (w LoopWindow) Duration() Time { return w.End - w.Start }
