package netsim

import "loopscope/internal/routing"

// RouterFIB is one router's forwarding state at snapshot time: the
// FIB projected to next-hop router names, the locally delivered
// prefixes, and the revision counter that stamps which version of the
// table was captured. Entry values are the *names* of next-hop
// routers rather than link pointers so a snapshot is self-contained —
// serialisable, diffable, and consumable by the static analyzer
// (internal/fibscan) with no live Network behind it.
type RouterFIB struct {
	ID       NodeID
	Name     string
	Revision uint64
	// Routes maps destination prefixes to next-hop router names, in
	// the FIB's deterministic walk order.
	Routes []routing.Entry[string]
	// Locals are the prefixes the router delivers locally. Local
	// delivery is checked before the FIB (see Router.receive), so a
	// forwarding cycle through a router that owns the destination is
	// not a loop packets could ever experience.
	Locals []routing.Prefix
}

// FIBSnapshot is a consistent capture of every router's FIB at one
// simulated instant. The simulator serialises all FIB mutations
// through its event loop, so a snapshot taken between events is
// atomic across the whole network — the property real control planes
// lack and the reason the trace/table cross-validation is interesting.
type FIBSnapshot struct {
	// At is the virtual capture time.
	At Time
	// Routers holds one entry per router, in creation (NodeID) order.
	Routers []RouterFIB
}

// SnapshotFIBs captures every router's FIB and local-delivery table,
// stamped with the current virtual time and per-router FIBRevision.
// The returned snapshot shares nothing with the live network.
func (n *Network) SnapshotFIBs() FIBSnapshot {
	snap := FIBSnapshot{At: n.Sim.Now()}
	snap.Routers = make([]RouterFIB, 0, len(n.routers))
	for _, r := range n.routers {
		rf := RouterFIB{
			ID:       r.ID,
			Name:     r.Name,
			Revision: r.fibRevision,
			Locals:   r.LocalPrefixes(),
		}
		r.fib.Walk(func(p routing.Prefix, l *Link) bool {
			rf.Routes = append(rf.Routes, routing.Entry[string]{Prefix: p, Value: l.To.Name})
			return true
		})
		snap.Routers = append(snap.Routers, rf)
	}
	return snap
}

// RevisionSum returns the sum of all routers' FIB revisions — a cheap
// change detector: two snapshots of the same network with equal sums
// captured no FIB mutation in between (revisions only increment).
func (s *FIBSnapshot) RevisionSum() uint64 {
	var sum uint64
	for i := range s.Routers {
		sum += s.Routers[i].Revision
	}
	return sum
}
