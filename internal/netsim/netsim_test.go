package netsim

import (
	"testing"
	"time"

	"loopscope/internal/packet"
	"loopscope/internal/routing"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3*time.Second, func() { order = append(order, 3) })
	s.Schedule(time.Second, func() { order = append(order, 1) })
	s.Schedule(2*time.Second, func() { order = append(order, 2) })
	// Same-instant events run in scheduling order.
	s.At(time.Second, func() { order = append(order, 11) })
	s.Run(10 * time.Second)
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now = %v after Run(10s)", s.Now())
	}
	if s.EventsRun() != 4 {
		t.Errorf("EventsRun = %d", s.EventsRun())
	}
}

func TestSimulatorRunBoundary(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.At(5*time.Second, func() { ran = true })
	s.Run(4 * time.Second)
	if ran {
		t.Error("future event ran early")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run(5 * time.Second)
	if !ran {
		t.Error("event at boundary did not run")
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 5 {
			s.Schedule(time.Second, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(time.Minute)
	if n != 5 {
		t.Errorf("ticks = %d", n)
	}
}

func TestSimulatorClampsPast(t *testing.T) {
	s := NewSimulator()
	var at Time
	s.At(2*time.Second, func() {
		s.At(time.Second, func() { at = s.Now() }) // in the past
	})
	s.Run(time.Minute)
	if at != 2*time.Second {
		t.Errorf("past event ran at %v, want clamped to 2s", at)
	}
}

// buildPair wires src -> dst with an attached prefix on dst.
func buildPair(bw float64, prop Time, queue int) (*Network, *Router, *Router, *Link) {
	n := NewNetwork()
	a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
	b := n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
	l := n.Connect(a, b, LinkParams{Bandwidth: bw, PropDelay: prop, QueueLimit: queue})
	dst := routing.MustParsePrefix("203.0.113.0/24")
	b.AttachPrefix(dst)
	a.SetRoute(dst, b.ID)
	return n, a, b, l
}

func testPacket(id uint16, ttl uint8, payload int) packet.Packet {
	return packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, TTL: ttl, Protocol: packet.ProtoUDP,
			Src: packet.MustParseAddr("192.0.2.1"),
			Dst: packet.MustParseAddr("203.0.113.50"), ID: id,
		},
		Kind:         packet.KindUDP,
		UDP:          packet.UDPHeader{SrcPort: 9, DstPort: 9},
		HasTransport: true,
		PayloadLen:   payload,
		PayloadSeed:  uint64(id),
	}
}

func TestLinkDelayMath(t *testing.T) {
	// 1 Mbps, 10 ms propagation: a 1000-byte packet (wire 1028 with
	// headers) serialises in 8.224 ms; delivery at tx+prop.
	n, a, _, _ := buildPair(1e6, 10*time.Millisecond, 16)
	var deliveredAt Time
	n.FateFilter = func(f *Fate) bool { return true }
	tp := n.Inject(a, testPacket(1, 64, 1000))
	wire := tp.Pkt.WireLen()
	n.Sim.Run(time.Second)
	if len(n.Fates) != 1 || !n.Fates[0].Delivered {
		t.Fatalf("fates: %+v", n.Fates)
	}
	deliveredAt = n.Fates[0].At
	wantTx := time.Duration(float64(wire*8) / 1e6 * float64(time.Second))
	want := wantTx + 10*time.Millisecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v (wire %d bytes)", deliveredAt, want, wire)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two packets injected back to back: the second waits for the
	// first's transmission.
	n, a, _, _ := buildPair(1e6, 0, 16)
	n.FateFilter = func(f *Fate) bool { return true }
	n.Inject(a, testPacket(1, 64, 1000))
	n.Inject(a, testPacket(2, 64, 1000))
	n.Sim.Run(time.Second)
	if len(n.Fates) != 2 {
		t.Fatalf("fates: %d", len(n.Fates))
	}
	d1, d2 := n.Fates[0].At, n.Fates[1].At
	if d2 != 2*d1 {
		t.Errorf("second delivery %v, want %v (strict FIFO serialisation)", d2, 2*d1)
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	n, a, _, _ := buildPair(1e6, 0, 4)
	for i := 0; i < 10; i++ {
		n.Inject(a, testPacket(uint16(i+1), 64, 1000))
	}
	n.Sim.Run(time.Second)
	if n.Drops[DropQueueFull] != 6 {
		t.Errorf("queue-full drops = %d, want 6", n.Drops[DropQueueFull])
	}
	if n.Delivered != 4 {
		t.Errorf("delivered = %d, want 4", n.Delivered)
	}
}

func TestTTLExpiryGeneratesICMP(t *testing.T) {
	// a -> b -> c chain; TTL 1 expires at b, which must send a
	// time-exceeded back to the source (delivered at a, where the
	// source prefix lives).
	n := NewNetwork()
	a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
	b := n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
	c := n.AddRouter("c", packet.MustParseAddr("10.0.0.3"))
	lp := DefaultLinkParams()
	n.Connect(a, b, lp)
	n.Connect(b, c, lp)
	dst := routing.MustParsePrefix("203.0.113.0/24")
	c.AttachPrefix(dst)
	a.AttachPrefix(routing.MustParsePrefix("192.0.2.0/24"))
	a.SetRoute(dst, b.ID)
	b.SetRoute(dst, c.ID)
	b.SetRoute(routing.MustParsePrefix("192.0.2.0/24"), a.ID)

	var icmp []*TransitPacket
	n.OnDeliver = func(r *Router, tp *TransitPacket) {
		if tp.Pkt.Kind == packet.KindICMP {
			icmp = append(icmp, tp)
		}
	}
	n.Inject(a, testPacket(1, 2, 100)) // TTL 2: a forwards (1), b expires
	n.Sim.Run(time.Second)

	if n.Drops[DropTTLExpired] != 1 {
		t.Fatalf("ttl drops = %d", n.Drops[DropTTLExpired])
	}
	if len(icmp) != 1 {
		t.Fatalf("icmp deliveries = %d", len(icmp))
	}
	got := icmp[0].Pkt
	if got.ICMP.Type != packet.ICMPTimeExceeded {
		t.Errorf("icmp type = %d", got.ICMP.Type)
	}
	if got.IP.Src != b.Loopback {
		t.Errorf("icmp source = %v, want b's loopback", got.IP.Src)
	}
	if got.IP.Dst != packet.MustParseAddr("192.0.2.1") {
		t.Errorf("icmp dest = %v", got.IP.Dst)
	}
}

func TestICMPRateLimit(t *testing.T) {
	n := NewNetwork()
	n.ICMPMinInterval = 100 * time.Millisecond
	a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
	b := n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
	n.Connect(a, b, DefaultLinkParams())
	dst := routing.MustParsePrefix("203.0.113.0/24")
	a.SetRoute(dst, b.ID)
	b.AttachPrefix(routing.MustParsePrefix("10.9.0.0/16"))

	// 10 expiring packets within 10 ms: only the first generates an
	// ICMP under a 100 ms limiter.
	for i := 0; i < 10; i++ {
		i := i
		n.Sim.At(time.Duration(i)*time.Millisecond, func() {
			pkt := testPacket(uint16(i+1), 1, 64) // TTL 1 expires at a
			n.Inject(a, pkt)
		})
	}
	n.Sim.Run(time.Second)
	if n.Drops[DropTTLExpired] != 10 {
		t.Fatalf("ttl drops = %d", n.Drops[DropTTLExpired])
	}
	// The generated ICMPs have no route (dst 192.0.2.1 unattached) so
	// they appear as no-route drops; exactly one limiter slot passed.
	if n.Drops[DropNoRoute] != 1 {
		t.Errorf("ICMP emissions = %d, want 1 (rate limited)", n.Drops[DropNoRoute])
	}
}

func TestNoICMPAboutICMPErrors(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
	b := n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
	n.Connect(a, b, DefaultLinkParams())

	pkt := packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, TTL: 1, Protocol: packet.ProtoICMP,
			Src: packet.MustParseAddr("10.0.0.9"), Dst: packet.MustParseAddr("203.0.113.1"), ID: 1,
		},
		Kind:         packet.KindICMP,
		ICMP:         packet.ICMPHeader{Type: packet.ICMPTimeExceeded},
		HasTransport: true,
	}
	n.Inject(a, pkt)
	n.Sim.Run(time.Second)
	if n.Injected != 1 {
		t.Errorf("a time-exceeded about a time-exceeded was generated (injected=%d)", n.Injected)
	}
}

func TestEchoReply(t *testing.T) {
	n, a, _, _ := buildPair(1e9, time.Millisecond, 16)
	a.AttachPrefix(routing.MustParsePrefix("192.0.2.0/24"))
	n.Router(1).SetRoute(routing.MustParsePrefix("192.0.2.0/24"), a.ID)

	var echoes int
	n.OnDeliver = func(r *Router, tp *TransitPacket) {
		if tp.Pkt.Kind == packet.KindICMP && tp.Pkt.ICMP.Type == packet.ICMPEchoReply {
			echoes++
		}
	}
	ping := packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, TTL: 64, Protocol: packet.ProtoICMP,
			Src: packet.MustParseAddr("192.0.2.7"), Dst: packet.MustParseAddr("203.0.113.3"), ID: 1,
		},
		Kind:         packet.KindICMP,
		ICMP:         packet.ICMPHeader{Type: packet.ICMPEchoRequest, Rest: 0x12340001},
		HasTransport: true,
		PayloadLen:   56,
	}
	n.Inject(a, ping)
	n.Sim.Run(time.Second)
	if echoes != 1 {
		t.Errorf("echo replies delivered = %d, want 1", echoes)
	}
}

func TestLinkFailureCallbacksAndDrops(t *testing.T) {
	n, a, _, l := buildPair(1e9, time.Millisecond, 16)
	var downAt Time
	a.OnLinkDown(func(fl *Link) { downAt = n.Sim.Now() })
	n.FailLink(l, 100*time.Millisecond)

	n.Sim.At(150*time.Millisecond, func() {
		n.Inject(a, testPacket(5, 64, 100))
	})
	n.Sim.Run(time.Second)

	wantDetect := 100*time.Millisecond + l.DetectDelay
	if downAt != wantDetect {
		t.Errorf("down callback at %v, want %v", downAt, wantDetect)
	}
	if n.Drops[DropLinkDown] != 1 {
		t.Errorf("link-down drops = %d", n.Drops[DropLinkDown])
	}

	// Repair restores forwarding.
	n.RepairLink(l, 2*time.Second)
	n.Sim.At(3*time.Second, func() { n.Inject(a, testPacket(6, 64, 100)) })
	n.Sim.Run(4 * time.Second)
	if n.Delivered != 1 {
		t.Errorf("delivered after repair = %d", n.Delivered)
	}
}

func TestLoopGroundTruthAndExpiry(t *testing.T) {
	// Manual two-router loop: a routes dst to b, b routes dst to a.
	n, a, b, _ := buildPair(1e9, time.Millisecond, 64)
	dst := routing.MustParsePrefix("198.51.100.0/24")
	a.SetRoute(dst, b.ID)
	b.SetRoute(dst, a.ID)

	pkt := testPacket(7, 8, 100)
	pkt.IP.Dst = packet.MustParseAddr("198.51.100.1")
	tp := n.Inject(a, pkt)
	n.Sim.Run(time.Second)

	if tp.LoopCount == 0 || tp.LoopSize != 2 {
		t.Errorf("loop metadata: count=%d size=%d", tp.LoopCount, tp.LoopSize)
	}
	if n.Drops[DropTTLExpired] != 1 {
		t.Errorf("expiry drops = %d", n.Drops[DropTTLExpired])
	}
	if len(n.GroundTruth) == 0 {
		t.Fatal("no ground-truth events")
	}
	w := n.GroundTruthWindows(time.Minute)
	if len(w) != 1 || w[0].Prefix != dst || w[0].MaxLoopSize != 2 {
		t.Errorf("windows = %+v", w)
	}
	// Default fate filter retains looped packets.
	if len(n.Fates) != 1 || n.Fates[0].LoopCount == 0 {
		t.Errorf("looped fate not retained: %+v", n.Fates)
	}
}

func TestGroundTruthWindowsSplitByGap(t *testing.T) {
	n := NewNetwork()
	d := packet.MustParseAddr("198.51.100.9")
	n.recordLoop(GroundTruthLoop{At: 0, Dst: d, LoopSize: 2})
	n.recordLoop(GroundTruthLoop{At: time.Second, Dst: d, LoopSize: 2})
	n.recordLoop(GroundTruthLoop{At: 10 * time.Second, Dst: d, LoopSize: 3})
	ws := n.GroundTruthWindows(2 * time.Second)
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Events != 2 || ws[1].Events != 1 {
		t.Errorf("events split = %d/%d", ws[0].Events, ws[1].Events)
	}
}

func TestLineLoss(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
	b := n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
	n.Connect(a, b, LinkParams{Bandwidth: 1e9, PropDelay: 0, QueueLimit: 1 << 20, LossRate: 0.1})
	dst := routing.MustParsePrefix("203.0.113.0/24")
	b.AttachPrefix(dst)
	a.SetRoute(dst, b.ID)
	const total = 20000
	for i := 0; i < total; i++ {
		i := i
		n.Sim.At(time.Duration(i)*time.Microsecond, func() {
			n.Inject(a, testPacket(uint16(i), 64, 0))
		})
	}
	n.Sim.Run(time.Minute)
	lossRate := float64(n.Drops[DropLineError]) / total
	if lossRate < 0.08 || lossRate > 0.12 {
		t.Errorf("line loss rate = %v, want ~0.1", lossRate)
	}
}

func TestMinuteAccounting(t *testing.T) {
	n, a, _, _ := buildPair(1e9, time.Millisecond, 16)
	n.Sim.At(30*time.Second, func() { n.Inject(a, testPacket(1, 64, 10)) })
	n.Sim.At(90*time.Second, func() { n.Inject(a, testPacket(2, 64, 10)) })
	n.Sim.Run(2 * time.Minute)
	if len(n.Minutes) < 2 {
		t.Fatalf("minutes = %d", len(n.Minutes))
	}
	if n.Minutes[0].Injected != 1 || n.Minutes[1].Injected != 1 {
		t.Errorf("per-minute injected = %d/%d", n.Minutes[0].Injected, n.Minutes[1].Injected)
	}
}

func TestCleanMeanDelay(t *testing.T) {
	n, a, _, _ := buildPair(1e9, 5*time.Millisecond, 16)
	n.Inject(a, testPacket(1, 64, 0))
	n.Sim.Run(time.Second)
	if n.CleanDelivered != 1 {
		t.Fatalf("clean delivered = %d", n.CleanDelivered)
	}
	if d := n.CleanMeanDelay(); d < 5*time.Millisecond || d > 6*time.Millisecond {
		t.Errorf("clean mean delay = %v", d)
	}
}

func TestSetRouteToNonNeighborPanics(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
	n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
	defer func() {
		if recover() == nil {
			t.Error("SetRoute to non-neighbor did not panic")
		}
	}()
	a.SetRoute(routing.MustParsePrefix("0.0.0.0/0"), 1)
}

func TestSimulatorStep(t *testing.T) {
	s := NewSimulator()
	ran := 0
	s.Schedule(time.Second, func() { ran++ })
	s.Schedule(2*time.Second, func() { ran++ })
	if !s.Step() || ran != 1 {
		t.Fatalf("first step: ran=%d", ran)
	}
	if s.Now() != time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	if !s.Step() || ran != 2 {
		t.Fatalf("second step: ran=%d", ran)
	}
	if s.Step() {
		t.Error("empty queue stepped")
	}
}

func TestLinkStringAndAccessors(t *testing.T) {
	n, _, _, l := buildPair(1e9, time.Millisecond, 16)
	if l.String() != "a->b" {
		t.Errorf("String = %q", l.String())
	}
	if !l.Up() {
		t.Error("fresh link down")
	}
	if l.QueueDepth() != 0 {
		t.Error("fresh link queued")
	}
	n.FailLink(l, 0)
	n.Sim.Run(time.Second)
	if l.Up() {
		t.Error("failed link still up")
	}
}

func TestRouterAccessors(t *testing.T) {
	_, a, b, _ := buildPair(1e9, time.Millisecond, 16)
	if got := a.Neighbors(); len(got) != 1 || got[0] != b.ID {
		t.Errorf("Neighbors = %v", got)
	}
	if a.LinkTo(99) != nil {
		t.Error("LinkTo unknown returned a link")
	}
	if len(a.Links()) != 1 {
		t.Errorf("Links = %d", len(a.Links()))
	}
	ps := b.LocalPrefixes()
	if len(ps) != 1 || ps[0] != routing.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("LocalPrefixes = %v", ps)
	}
	rev0 := a.FIBRevision()
	a.RemoveRoute(routing.MustParsePrefix("203.0.113.0/24"))
	if a.FIBRevision() == rev0 {
		t.Error("FIB revision not bumped")
	}
	if _, ok := a.RouteVia(packet.MustParseAddr("203.0.113.1")); ok {
		t.Error("route still present after removal")
	}
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	defer func() {
		if recover() == nil {
			t.Error("zero-bandwidth Connect accepted")
		}
	}()
	n.Connect(a, b, LinkParams{})
}

func TestProcJitterDeterministicAndBounded(t *testing.T) {
	run := func() []Time {
		n := NewNetwork()
		n.FateFilter = func(*Fate) bool { return true }
		a := n.AddRouter("a", packet.MustParseAddr("10.0.0.1"))
		b := n.AddRouter("b", packet.MustParseAddr("10.0.0.2"))
		n.Connect(a, b, LinkParams{
			Bandwidth: 1e9, PropDelay: time.Millisecond,
			QueueLimit: 64, ProcJitter: 500 * time.Microsecond,
		})
		dst := routing.MustParsePrefix("203.0.113.0/24")
		b.AttachPrefix(dst)
		a.SetRoute(dst, b.ID)
		for i := 0; i < 50; i++ {
			i := i
			n.Sim.At(time.Duration(i)*10*time.Millisecond, func() {
				n.Inject(a, testPacket(uint16(i+1), 64, 100))
			})
		}
		n.Sim.Run(time.Second)
		var delays []Time
		for _, f := range n.Fates {
			delays = append(delays, f.Delay)
		}
		return delays
	}
	d1, d2 := run(), run()
	if len(d1) != 50 || len(d2) != 50 {
		t.Fatalf("deliveries: %d/%d", len(d1), len(d2))
	}
	base := time.Millisecond + time.Duration(float64(100+28)*8/1e9*float64(time.Second))
	distinct := map[Time]bool{}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("jitter not deterministic at %d: %v vs %v", i, d1[i], d2[i])
		}
		j := d1[i] - base
		if j < 0 || j >= 500*time.Microsecond {
			t.Errorf("jitter out of bounds: %v", j)
		}
		distinct[d1[i]] = true
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct delays; jitter not spreading", len(distinct))
	}
}
