package baseline_test

import (
	"testing"
	"time"

	"loopscope/internal/baseline"
	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/routing/igp"
	"loopscope/internal/stats"
)

// buildLine builds ing → c1 → c2 → a1 → e1 with a backup exit pb off
// c1, so failing a1–e1 creates a c1/c2 transient loop.
func buildLine(t *testing.T) (*netsim.Network, *netsim.Router, *netsim.Link, routing.Prefix) {
	t.Helper()
	net := netsim.NewNetwork()
	lp := netsim.DefaultLinkParams()

	names := []string{"ing", "c1", "c2", "a1", "e1", "pb"}
	rs := make([]*netsim.Router, len(names))
	for i, n := range names {
		rs[i] = net.AddRouter(n, packet.AddrFrom(10, 0, 0, byte(i+1)))
		rs[i].AttachPrefix(routing.NewPrefix(rs[i].Loopback, 32))
	}
	ing, c1, c2, a1, e1, pb := rs[0], rs[1], rs[2], rs[3], rs[4], rs[5]
	net.Connect(ing, c1, lp)
	net.Connect(c1, c2, lp)
	net.Connect(c2, a1, lp)
	primary := net.Connect(a1, e1, lp)
	bk := netsim.DefaultLinkParams()
	bk.CostAB, bk.CostBA = 10, 10
	net.Connect(c1, pb, bk)

	dst := routing.MustParsePrefix("203.0.113.0/24")
	e1.AttachPrefix(dst)
	pb.AttachPrefix(dst)
	// Host space at the ingress, routable before the IGP seeds its
	// LSAs, so ICMP errors find their way back to probers and
	// sources.
	ing.AttachPrefix(routing.MustParsePrefix("192.0.2.0/24"))

	cfg := igp.Config{
		FloodHop:   igp.Fixed(15 * time.Millisecond),
		SPFHold:    igp.Fixed(200 * time.Millisecond),
		SPFCompute: igp.Fixed(20 * time.Millisecond),
		FIBUpdate:  igp.Range(100*time.Millisecond, 3*time.Second),
	}
	p := igp.Attach(net, cfg, stats.NewRNG(5))
	p.Start()
	return net, ing, primary, dst
}

func TestTracerouteSeesStablePath(t *testing.T) {
	net, ing, _, dst := buildLine(t)
	pr := baseline.NewProber(net, ing, packet.MustParseAddr("192.0.2.250"),
		[]packet.Addr{packet.MustParseAddr("203.0.113.7")}, baseline.Config{
			Interval: 10 * time.Second, ProbeTimeout: time.Second, MaxTTL: 8,
		})
	pr.Start(15 * time.Second)
	net.Sim.Run(40 * time.Second)

	if len(pr.Results) == 0 {
		t.Fatalf("no traceroutes completed")
	}
	tr := pr.Results[0]
	// Expect the forward path routers to answer in order:
	// c1 (10.0.0.2), c2 (.3), a1 (.4); then the destination absorbs
	// the rest (holes).
	// TTL 1 expires at the ingress gateway itself, then each router
	// along the path.
	want := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"}
	for i, w := range want {
		if i >= len(tr.Hops) {
			t.Fatalf("traceroute too short: %v", tr.Hops)
		}
		if tr.Hops[i].String() != w {
			t.Errorf("hop %d = %v, want %s (hops %v)", i+1, tr.Hops[i], w, tr.Hops)
		}
	}
	if tr.LoopDetected {
		t.Errorf("loop detected on a stable path: %+v", tr)
	}
	_ = dst
}

// TestTracerouteMissesShortLoop is the paper's §III argument as an
// executable claim: a sparse active prober misses transient loops that
// the passive trace detector catches.
func TestTracerouteMissesShortLoop(t *testing.T) {
	net, ing, primary, _ := buildLine(t)

	// Probe every 20s: expected to miss a ~1s loop almost always.
	pr := baseline.NewProber(net, ing, packet.MustParseAddr("192.0.2.250"),
		[]packet.Addr{packet.MustParseAddr("203.0.113.7")}, baseline.Config{
			Interval: 20 * time.Second, ProbeTimeout: time.Second, MaxTTL: 8,
		})
	pr.Start(100 * time.Second)

	// Passive tap on the monitored link c1->c2.
	c1 := net.Router(1)
	mon := c1.LinkTo(2)
	var count int
	mon.AddTap(func(at netsim.Time, tp *netsim.TransitPacket) { count++ })

	// Background traffic so the passive detector has packets to see.
	for i := 0; i < 3000; i++ {
		i := i
		net.Sim.At(time.Duration(i)*30*time.Millisecond, func() {
			net.Inject(ing, packet.Packet{
				IP: packet.IPv4Header{
					Version: 4, IHL: 5, TTL: 64, Protocol: packet.ProtoUDP,
					Src: packet.MustParseAddr("192.0.2.66"),
					Dst: packet.MustParseAddr("203.0.113.9"),
					ID:  uint16(i + 1),
				},
				Kind:         packet.KindUDP,
				UDP:          packet.UDPHeader{SrcPort: 7000, DstPort: 53},
				HasTransport: true,
				PayloadLen:   64, PayloadSeed: uint64(i + 1),
			})
		})
	}

	// Several fail/repair cycles: each transition (in either
	// direction) has a chance of an observable loop depending on the
	// FIB-update ordering, so a handful makes at least one all but
	// certain.
	for _, at := range []time.Duration{30 * time.Second, 50 * time.Second, 70 * time.Second} {
		net.FailLink(primary, at)
		net.RepairLink(primary, at+10*time.Second)
	}
	net.Sim.Run(120 * time.Second)

	if len(net.GroundTruth) == 0 {
		t.Fatalf("no loop occurred")
	}
	gt := net.GroundTruthWindows(2 * time.Second)
	var longest time.Duration
	for _, w := range gt {
		if w.Duration() > longest {
			longest = w.Duration()
		}
	}
	if longest > 15*time.Second {
		t.Fatalf("unexpectedly long loop: %v", longest)
	}
	// The active prober ran through the whole window yet (very
	// likely) saw nothing: no traceroute overlapped the sub-5s loop.
	overlapped := false
	for _, tr := range pr.Results {
		for _, w := range gt {
			if tr.At >= w.Start-2*time.Second && tr.At <= w.End {
				overlapped = true
			}
		}
	}
	if !overlapped && pr.LoopsDetected() > 0 {
		t.Errorf("prober claims a loop without overlapping one: %+v", pr.Results)
	}
	t.Logf("ground-truth windows %d (longest %v); traceroutes=%d, loops seen by prober=%d, packets on monitored link=%d",
		len(gt), longest, len(pr.Results), pr.LoopsDetected(), count)
}
