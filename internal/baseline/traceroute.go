// Package baseline implements the comparison point the paper argues
// against (§III): active, end-to-end loop detection in the style of
// Paxson's traceroute study. A prober at a vantage router walks the
// TTL space towards chosen destinations, reconstructs forwarding paths
// from the ICMP time-exceeded responses, and flags a loop when the
// same router answers at two different TTLs of one traceroute.
//
// Run against the same simulated network as the passive detector, it
// demonstrates the paper's point quantitatively: a traceroute only
// sees a transient loop if one of its probes happens to be in flight
// through the looping region during the (often sub-second) window, so
// it misses most of them, and it cannot say anything about how much
// traffic was affected.
package baseline

import (
	"time"

	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
)

// Config tunes the prober.
type Config struct {
	// Interval is the pause between consecutive traceroutes of the
	// same destination.
	Interval time.Duration
	// ProbeTimeout is how long to wait for a hop's reply.
	ProbeTimeout time.Duration
	// MaxTTL bounds the TTL walk.
	MaxTTL int
}

// DefaultConfig paces like a measurement-infrastructure traceroute:
// one pass per destination per 30 s.
func DefaultConfig() Config {
	return Config{
		Interval:     30 * time.Second,
		ProbeTimeout: 2 * time.Second,
		MaxTTL:       24,
	}
}

// Traceroute is one completed TTL walk.
type Traceroute struct {
	Dst  packet.Addr
	At   time.Duration
	Hops []packet.Addr // zero Addr = no response at that TTL
	// LoopDetected reports whether some router appeared at two
	// different hops.
	LoopDetected bool
	// LoopAddr is the repeated router when LoopDetected.
	LoopAddr packet.Addr
}

// Prober drives periodic traceroutes from a vantage router.
type Prober struct {
	net     *netsim.Network
	cfg     Config
	vantage *netsim.Router
	srcAddr packet.Addr
	dsts    []packet.Addr

	// Results collects completed traceroutes.
	Results []Traceroute
	// ProbesSent counts individual probe packets.
	ProbesSent int

	current *walk
	queue   []packet.Addr
	nextRun time.Duration
}

// walk is the in-progress traceroute state.
type walk struct {
	dst      packet.Addr
	ttl      int
	hops     []packet.Addr
	deadline time.Duration
	answered bool
	started  time.Duration
}

// NewProber creates a prober at vantage. srcAddr must be an address
// delivered at the vantage router (attach a host prefix there) so the
// ICMP errors come back to the prober. The prober cycles through dsts
// round-robin, one traceroute at a time, every cfg.Interval.
func NewProber(n *netsim.Network, vantage *netsim.Router, srcAddr packet.Addr, dsts []packet.Addr, cfg Config) *Prober {
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = 24
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	p := &Prober{net: n, cfg: cfg, vantage: vantage, srcAddr: srcAddr, dsts: dsts}
	vantage.AttachPrefix(routing.NewPrefix(srcAddr, 32))
	prev := n.OnDeliver
	n.OnDeliver = func(r *netsim.Router, tp *netsim.TransitPacket) {
		if prev != nil {
			prev(r, tp)
		}
		p.onDeliver(r, tp)
	}
	return p
}

// Start schedules the probing loop for the given window.
func (p *Prober) Start(until time.Duration) {
	var tick func()
	tick = func() {
		now := p.net.Sim.Now()
		if now >= until {
			return
		}
		if p.current == nil && now >= p.nextRun {
			p.startWalk()
		}
		p.net.Sim.Schedule(100*time.Millisecond, tick)
	}
	p.net.Sim.Schedule(0, tick)
}

func (p *Prober) startWalk() {
	if len(p.queue) == 0 {
		p.queue = append(p.queue, p.dsts...)
	}
	dst := p.queue[0]
	p.queue = p.queue[1:]
	p.current = &walk{dst: dst, ttl: 0, started: p.net.Sim.Now()}
	p.sendNextProbe()
}

func (p *Prober) sendNextProbe() {
	w := p.current
	w.ttl++
	if w.ttl > p.cfg.MaxTTL {
		p.finishWalk()
		return
	}
	p.ProbesSent++
	w.answered = false
	w.deadline = p.net.Sim.Now() + p.cfg.ProbeTimeout
	p.net.Inject(p.vantage, packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5,
			TTL:      uint8(w.ttl),
			Protocol: packet.ProtoUDP,
			Src:      p.srcAddr, Dst: w.dst,
			ID: uint16(p.ProbesSent),
		},
		Kind: packet.KindUDP,
		UDP: packet.UDPHeader{
			SrcPort: 33000,
			DstPort: uint16(33434 + w.ttl), // classic traceroute port walk
		},
		HasTransport: true,
		PayloadLen:   12,
		PayloadSeed:  uint64(p.ProbesSent),
	})
	ttl := w.ttl
	p.net.Sim.At(w.deadline, func() {
		if p.current == w && w.ttl == ttl && !w.answered {
			// Hop timed out: record a hole and continue.
			w.hops = append(w.hops, packet.Addr{})
			p.sendNextProbe()
		}
	})
}

// onDeliver receives packets delivered at the vantage router and
// matches ICMP time-exceeded errors to the outstanding probe.
func (p *Prober) onDeliver(r *netsim.Router, tp *netsim.TransitPacket) {
	w := p.current
	if w == nil || w.answered || r != p.vantage {
		return
	}
	pk := &tp.Pkt
	if pk.Kind != packet.KindICMP || !pk.HasTransport {
		return
	}
	if pk.IP.Dst != p.srcAddr || pk.ICMP.Type != packet.ICMPTimeExceeded {
		return
	}
	w.answered = true
	w.hops = append(w.hops, pk.IP.Src)
	p.sendNextProbe()
}

// finishWalk closes the current traceroute, detecting repeats.
func (p *Prober) finishWalk() {
	w := p.current
	p.current = nil
	p.nextRun = p.net.Sim.Now() + p.cfg.Interval
	tr := Traceroute{Dst: w.dst, At: w.started, Hops: w.hops}
	seen := make(map[packet.Addr]bool)
	for _, h := range w.hops {
		if h == (packet.Addr{}) {
			continue
		}
		if seen[h] {
			tr.LoopDetected = true
			tr.LoopAddr = h
			break
		}
		seen[h] = true
	}
	p.Results = append(p.Results, tr)
}

// LoopsDetected counts traceroutes that saw a loop.
func (p *Prober) LoopsDetected() int {
	n := 0
	for _, t := range p.Results {
		if t.LoopDetected {
			n++
		}
	}
	return n
}
