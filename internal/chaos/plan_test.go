package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"loopscope/internal/resil"
)

func TestPlanWindow(t *testing.T) {
	boom := errors.New("boom")
	p := NewPlan(1, Rule{Op: resil.OpJournalWrite, Start: 2, End: 4, Prob: 1, Err: boom})
	var fails []int
	for i := 0; i < 6; i++ {
		if err := p.Fault(resil.OpJournalWrite); err != nil {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, boom) {
				t.Fatalf("invocation %d: error %v does not wrap ErrInjected and the rule error", i, err)
			}
			fails = append(fails, i)
		}
	}
	if len(fails) != 2 || fails[0] != 2 || fails[1] != 3 {
		t.Fatalf("faults fired at %v, want [2 3]", fails)
	}
	if got := p.Invocations(resil.OpJournalWrite); got != 6 {
		t.Fatalf("Invocations = %d, want 6", got)
	}
}

func TestPlanUnboundedWindow(t *testing.T) {
	p := NewPlan(1, Rule{Op: resil.OpWebhookPost, Start: 1, Prob: 1, Err: errors.New("x")})
	if err := p.Fault(resil.OpWebhookPost); err != nil {
		t.Fatal("invocation 0 fired before Start")
	}
	for i := 1; i < 10; i++ {
		if err := p.Fault(resil.OpWebhookPost); err == nil {
			t.Fatalf("invocation %d: unbounded rule did not fire", i)
		}
	}
}

func TestPlanOpsIndependent(t *testing.T) {
	// Only the targeted op faults; other ops never see the rule.
	p := NewPlan(1, Rule{Op: resil.OpJournalWrite, Prob: 1, Err: errors.New("x")})
	for i := 0; i < 5; i++ {
		if err := p.Fault(resil.OpCheckpointSave); err != nil {
			t.Fatal("rule leaked onto another op")
		}
	}
	if err := p.Fault(resil.OpJournalWrite); err == nil {
		t.Fatal("targeted op did not fault")
	}
}

func TestPlanDeterministicPerOp(t *testing.T) {
	// The per-op fault sequence must not depend on interleaving with
	// other ops: run the same probabilistic rule with and without a
	// competing op racing draws, and require identical firing patterns.
	rules := []Rule{
		{Op: resil.OpJournalWrite, Prob: 0.3, Err: errors.New("x")},
		{Op: resil.OpWebhookPost, Prob: 0.7, Err: errors.New("y")},
	}
	pattern := func(interleave bool) []bool {
		p := NewPlan(99, rules...)
		var out []bool
		for i := 0; i < 100; i++ {
			if interleave {
				p.Fault(resil.OpWebhookPost)
				p.Fault(resil.OpWebhookPost)
			}
			out = append(out, p.Fault(resil.OpJournalWrite) != nil)
		}
		return out
	}
	solo, raced := pattern(false), pattern(true)
	for i := range solo {
		if solo[i] != raced[i] {
			t.Fatalf("invocation %d: journal fault pattern changed when webhook draws interleaved", i)
		}
	}
	fired := 0
	for _, f := range solo {
		if f {
			fired++
		}
	}
	if fired < 10 || fired > 60 {
		t.Fatalf("Prob 0.3 fired %d/100 times; draw looks broken", fired)
	}
}

func TestPlanDelayOnly(t *testing.T) {
	p := NewPlan(1, Rule{Op: resil.OpWebhookPost, Prob: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Fault(resil.OpWebhookPost); err != nil {
		t.Fatalf("delay-only rule returned error %v", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay-only rule slept %v, want >= 20ms", elapsed)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	p := NewPlan(1, Rule{Op: resil.OpJournalWrite, Prob: 0.5, Err: errors.New("x")})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.Fault(resil.OpJournalWrite)
			}
		}()
	}
	wg.Wait()
	if got := p.Invocations(resil.OpJournalWrite); got != 1600 {
		t.Fatalf("Invocations = %d, want 1600", got)
	}
}

func TestPlanWriteLog(t *testing.T) {
	p := NewPlan(1, Rule{Op: resil.OpJournalWrite, End: 3, Prob: 1, Err: errors.New("enospc")})
	for i := 0; i < 5; i++ {
		p.Fault(resil.OpJournalWrite)
	}
	if got := len(p.Log()); got != 3 {
		t.Fatalf("log has %d records, want 3", got)
	}
	path := filepath.Join(t.TempDir(), "faults.jsonl")
	if err := p.WriteLog(path); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("log file has %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], `"journal.write"`) || !strings.Contains(lines[0], "enospc") {
		t.Fatalf("log line missing op/err: %s", lines[0])
	}
}
