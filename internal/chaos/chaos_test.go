package chaos

import (
	"bytes"
	"testing"
	"time"

	"loopscope/internal/trace"
)

func mkRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		data := make([]byte, 40)
		data[0] = 0x45
		data[16] = byte(i >> 8)
		data[17] = byte(i)
		recs[i] = trace.Record{
			Time:    time.Duration(i) * time.Millisecond,
			WireLen: 100,
			Data:    data,
		}
	}
	return recs
}

func meta() trace.Meta {
	return trace.Meta{Link: "chaos-test", SnapLen: 48, Start: time.Unix(1000, 0)}
}

func TestCorruptBytesDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44}, 1024)
	cfg := ByteFaults{Seed: 7, BitFlips: 5, GarbageBursts: 3, BurstLen: 32, TruncateTail: 10}
	a, da := CorruptBytes(data, cfg)
	b, db := CorruptBytes(data, cfg)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if len(da) != len(db) {
		t.Error("same seed produced different damage reports")
	}
	c, _ := CorruptBytes(data, ByteFaults{Seed: 8, BitFlips: 5, GarbageBursts: 3, BurstLen: 32, TruncateTail: 10})
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corruption")
	}
	if bytes.Equal(data[:len(a)], a) {
		t.Error("no corruption applied")
	}
	if len(a) != len(data)-10 {
		t.Errorf("tail truncation: len %d, want %d", len(a), len(data)-10)
	}
}

func TestCorruptBytesRespectsProtect(t *testing.T) {
	data := make([]byte, 4096)
	protect := []Range{{Off: 0, Len: 256}, {Off: 2000, Len: 500}}
	out, damaged := CorruptBytes(data, ByteFaults{
		Seed: 3, BitFlips: 50, GarbageBursts: 20, BurstLen: 100, Protect: protect,
	})
	if !bytes.Equal(out[:256], data[:256]) {
		t.Error("protected header range modified")
	}
	if !bytes.Equal(out[2000:2500], data[2000:2500]) {
		t.Error("protected middle range modified")
	}
	for _, d := range damaged {
		if overlaps(protect, d.Off, d.Len) {
			t.Errorf("damage report %+v overlaps a protected range", d)
		}
	}
	if len(damaged) == 0 {
		t.Error("nothing damaged")
	}
}

func TestSourceDropAndCountLoss(t *testing.T) {
	recs := mkRecords(1000)
	src := NewSource(trace.NewSliceSource(meta(), recs), RecordFaults{
		Seed: 11, Drop: 0.2, CountLoss: true,
	})
	out, err := trace.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if st.Dropped == 0 {
		t.Fatal("nothing dropped at 20%")
	}
	if len(out)+st.Dropped != len(recs) {
		t.Errorf("%d survivors + %d dropped != %d input", len(out), st.Dropped, len(recs))
	}
	lost := 0
	for _, r := range out {
		lost += r.Lost
	}
	// Drops after the last survivor are not attributable to any record.
	if lost == 0 || lost > st.Dropped {
		t.Errorf("Lost counters sum to %d, dropped %d", lost, st.Dropped)
	}
}

func TestSourceDupTruncateReorder(t *testing.T) {
	recs := mkRecords(2000)
	src := NewSource(trace.NewSliceSource(meta(), recs), RecordFaults{
		Seed: 5, Dup: 0.05, Truncate: 0.05, Reorder: 0.05,
	})
	out, err := trace.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	if st.Duplicated == 0 || st.Truncated == 0 || st.Reordered == 0 {
		t.Fatalf("faults not injected: %+v", st)
	}
	if len(out) != len(recs)+st.Duplicated {
		t.Errorf("%d out records, want %d", len(out), len(recs)+st.Duplicated)
	}
	// No record may vanish: every input identity must appear.
	seen := make(map[uint16]bool)
	short := 0
	for _, r := range out {
		if len(r.Data) >= 18 {
			seen[uint16(r.Data[16])<<8|uint16(r.Data[17])] = true
		} else {
			short++
		}
	}
	if len(seen)+short < len(recs) {
		t.Errorf("only %d identities + %d truncated of %d inputs", len(seen), short, len(recs))
	}
	if err := trace.Validate(out); err == nil {
		t.Error("reordered stream unexpectedly validates clean")
	}
}

func TestSinkMatchesSource(t *testing.T) {
	// The same seed must inject the same faults whether wrapped
	// around the producer or the consumer.
	recs := mkRecords(500)
	cfg := RecordFaults{Seed: 42, Drop: 0.1, Dup: 0.1, Truncate: 0.1, Reorder: 0.1, CountLoss: true}

	src := NewSource(trace.NewSliceSource(meta(), recs), cfg)
	fromSource, err := trace.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}

	var collected []trace.Record
	sink := NewSink(sinkFunc(func(r trace.Record) error {
		collected = append(collected, r)
		return nil
	}), cfg)
	for _, r := range recs {
		if err := sink.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	if len(fromSource) != len(collected) {
		t.Fatalf("source path %d records, sink path %d", len(fromSource), len(collected))
	}
	for i := range fromSource {
		if !bytes.Equal(fromSource[i].Data, collected[i].Data) || fromSource[i].Lost != collected[i].Lost {
			t.Fatalf("record %d differs between source and sink paths", i)
		}
	}
	if src.Stats() != sink.Stats() {
		t.Errorf("stats differ: %+v vs %+v", src.Stats(), sink.Stats())
	}
}

type sinkFunc func(trace.Record) error

func (f sinkFunc) Write(r trace.Record) error { return f(r) }

func TestZeroConfigIsTransparent(t *testing.T) {
	recs := mkRecords(100)
	src := NewSource(trace.NewSliceSource(meta(), recs), RecordFaults{Seed: 1})
	out, err := trace.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(recs) {
		t.Fatalf("zero config changed record count: %d != %d", len(out), len(recs))
	}
	for i := range out {
		if !bytes.Equal(out[i].Data, recs[i].Data) || out[i].Time != recs[i].Time {
			t.Fatalf("zero config modified record %d", i)
		}
	}
}
