// Package chaos provides deterministic, seedable fault injectors for
// packet traces. It models the failure modes real capture rigs
// exhibit — capture-card drops, truncated snapshots, duplicated and
// reordered records, bit rot and garbage bursts on archived files —
// so that the ingestion layer's degraded-input behavior can be tested
// (and demonstrated via tracegen) instead of merely hoped for.
//
// Two layers of faults are offered:
//
//   - Record-level faults (Source / Sink wrappers around a
//     trace.Source or trace.Sink): drops, duplicates, snapshot
//     truncation, reordering. These produce structurally valid traces
//     whose *content* is degraded, the way a lossy capture rig
//     degrades it. Dropped records can feed the ERF loss counter
//     (trace.Record.Lost), matching what a DAG card reports.
//
//   - Byte-level faults (CorruptBytes): bit flips, garbage bursts and
//     tail truncation applied to an encoded trace file. These produce
//     structurally *damaged* files, the way storage and transfer
//     degrade them — the inputs trace.SalvageReader exists for.
//
// Everything is driven by loopscope's splitmix64 RNG: the same seed
// and configuration always produce the same faults, on any platform,
// which is what makes chaos tests reproducible.
package chaos

import (
	"io"

	"loopscope/internal/stats"
	"loopscope/internal/trace"
)

// ---------------------------------------------------------------------------
// Byte-level corruption.

// Range is a half-open byte range [Off, Off+Len).
type Range struct {
	Off int64
	Len int64
}

// contains reports whether the ranges cover byte i.
func contains(rs []Range, i int64) bool {
	for _, r := range rs {
		if i >= r.Off && i < r.Off+r.Len {
			return true
		}
	}
	return false
}

// overlaps reports whether [off, off+n) intersects any range.
func overlaps(rs []Range, off, n int64) bool {
	for _, r := range rs {
		if off < r.Off+r.Len && r.Off < off+n {
			return true
		}
	}
	return false
}

// ByteFaults configures CorruptBytes.
type ByteFaults struct {
	// Seed drives the deterministic fault placement.
	Seed uint64
	// BitFlips is the number of single-bit flips to apply.
	BitFlips int
	// GarbageBursts is the number of contiguous regions to overwrite
	// with random bytes; each burst is 1..BurstLen bytes long
	// (BurstLen <= 0 selects 64).
	GarbageBursts int
	BurstLen      int
	// TruncateTail removes the final TruncateTail bytes, simulating
	// a capture cut off mid-record.
	TruncateTail int
	// Protect lists byte ranges that must survive untouched (file
	// headers, records a test needs intact). Faults that cannot be
	// placed outside the protected ranges after a bounded number of
	// draws are dropped.
	Protect []Range
}

// CorruptBytes returns a damaged copy of data along with the byte
// ranges it damaged (tail truncation is reported as a range at the
// new end of file). The original slice is never modified. The result
// is a pure function of (data, cfg).
func CorruptBytes(data []byte, cfg ByteFaults) ([]byte, []Range) {
	rng := stats.NewRNG(cfg.Seed)
	out := make([]byte, len(data))
	copy(out, data)
	var damaged []Range

	if cfg.TruncateTail > 0 && cfg.TruncateTail < len(out) {
		cut := int64(len(out) - cfg.TruncateTail)
		if !overlaps(cfg.Protect, cut, int64(cfg.TruncateTail)) {
			out = out[:cut]
			damaged = append(damaged, Range{Off: cut, Len: int64(cfg.TruncateTail)})
		}
	}

	burstLen := cfg.BurstLen
	if burstLen <= 0 {
		burstLen = 64
	}
	for i := 0; i < cfg.GarbageBursts && len(out) > 0; i++ {
		n := int64(1 + rng.Intn(burstLen))
		// Bounded rejection sampling keeps placement deterministic
		// even when protected ranges cover most of the file.
		for try := 0; try < 100; try++ {
			off := rng.Int63n(int64(len(out)))
			if off+n > int64(len(out)) {
				n = int64(len(out)) - off
			}
			if n <= 0 || overlaps(cfg.Protect, off, n) {
				continue
			}
			for j := int64(0); j < n; j++ {
				out[off+j] = byte(rng.Uint64())
			}
			damaged = append(damaged, Range{Off: off, Len: n})
			break
		}
	}

	for i := 0; i < cfg.BitFlips && len(out) > 0; i++ {
		for try := 0; try < 100; try++ {
			off := rng.Int63n(int64(len(out)))
			if contains(cfg.Protect, off) {
				continue
			}
			out[off] ^= 1 << (rng.Intn(8))
			damaged = append(damaged, Range{Off: off, Len: 1})
			break
		}
	}
	return out, damaged
}

// ---------------------------------------------------------------------------
// Record-level faults.

// RecordFaults configures the Source and Sink wrappers. All rates are
// probabilities in [0, 1]; zero disables the fault.
type RecordFaults struct {
	// Seed drives the deterministic fault draws.
	Seed uint64
	// Drop is the probability a record vanishes, as when the capture
	// card's FIFO overflows.
	Drop float64
	// CountLoss makes each dropped record increment the Lost counter
	// of the next surviving record, the way a DAG card accounts for
	// its drops in the ERF lctr field. Only the ERF on-disk format
	// preserves the counter.
	CountLoss bool
	// Dup is the probability a record is emitted a second time,
	// back to back — a capture-path duplicate.
	Dup float64
	// Truncate is the probability a record's snapshot is cut short
	// (its Data shrinks; WireLen is untouched), as when a snapshot
	// write is interrupted.
	Truncate float64
	// Reorder is the probability a record is held back and emitted
	// after its successor — a two-record transposition.
	Reorder float64
}

// FaultStats counts the faults actually injected.
type FaultStats struct {
	Dropped    int
	Duplicated int
	Truncated  int
	Reordered  int
}

// faulter applies RecordFaults to a record stream; shared by Source
// and Sink.
type faulter struct {
	cfg         RecordFaults
	rng         *stats.RNG
	stats       FaultStats
	pendingLost int
	held        *trace.Record // record delayed by a reorder
}

func newFaulter(cfg RecordFaults) *faulter {
	return &faulter{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// step applies faults to one incoming record and returns the records
// to emit now (possibly none).
func (f *faulter) step(rec trace.Record) []trace.Record {
	if f.cfg.Drop > 0 && f.rng.Bool(f.cfg.Drop) {
		f.stats.Dropped++
		if f.cfg.CountLoss {
			f.pendingLost++
		}
		return nil
	}
	if f.pendingLost > 0 {
		rec.Lost += f.pendingLost
		f.pendingLost = 0
	}
	if f.cfg.Truncate > 0 && len(rec.Data) > 0 && f.rng.Bool(f.cfg.Truncate) {
		cut := f.rng.Intn(len(rec.Data))
		rec.Data = rec.Data[:cut]
		f.stats.Truncated++
	}
	out := make([]trace.Record, 0, 3)
	if f.held != nil {
		// The held record trades places with its successor: emit the
		// new record first, then the delayed one.
		out = append(out, rec, *f.held)
		f.held = nil
	} else if f.cfg.Reorder > 0 && f.rng.Bool(f.cfg.Reorder) {
		f.stats.Reordered++
		f.held = &rec
		return nil
	} else {
		out = append(out, rec)
	}
	if f.cfg.Dup > 0 && f.rng.Bool(f.cfg.Dup) {
		f.stats.Duplicated++
		out = append(out, out[len(out)-1])
	}
	return out
}

// flush returns any record still held back by a pending reorder.
func (f *faulter) flush() []trace.Record {
	if f.held == nil {
		return nil
	}
	rec := *f.held
	f.held = nil
	return []trace.Record{rec}
}

// Source wraps a trace.Source, injecting record-level faults as the
// stream is read.
type Source struct {
	src     trace.Source
	f       *faulter
	queue   []trace.Record
	drained bool
}

// NewSource returns a fault-injecting view of src.
func NewSource(src trace.Source, cfg RecordFaults) *Source {
	return &Source{src: src, f: newFaulter(cfg)}
}

// Meta implements trace.Source.
func (s *Source) Meta() trace.Meta { return s.src.Meta() }

// Next implements trace.Source.
func (s *Source) Next() (trace.Record, error) {
	for {
		if len(s.queue) > 0 {
			rec := s.queue[0]
			s.queue = s.queue[1:]
			return rec, nil
		}
		if s.drained {
			return trace.Record{}, io.EOF
		}
		rec, err := s.src.Next()
		if err == io.EOF {
			s.drained = true
			s.queue = s.f.flush()
			continue
		}
		if err != nil {
			return trace.Record{}, err
		}
		s.queue = s.f.step(rec)
	}
}

// Stats returns the faults injected so far.
func (s *Source) Stats() FaultStats { return s.f.stats }

// Sink wraps a trace.Sink, injecting record-level faults as the
// stream is written. Call Flush before flushing the underlying sink,
// or a record held back by a pending reorder is lost.
type Sink struct {
	dst trace.Sink
	f   *faulter
}

// NewSink returns a fault-injecting view of dst.
func NewSink(dst trace.Sink, cfg RecordFaults) *Sink {
	return &Sink{dst: dst, f: newFaulter(cfg)}
}

// Write implements trace.Sink.
func (s *Sink) Write(rec trace.Record) error {
	for _, r := range s.f.step(rec) {
		if err := s.dst.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush emits any record held back by a pending reorder. It does not
// flush the underlying sink.
func (s *Sink) Flush() error {
	for _, r := range s.f.flush() {
		if err := s.dst.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the faults injected so far.
func (s *Sink) Stats() FaultStats { return s.f.stats }
