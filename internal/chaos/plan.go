package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"

	"loopscope/internal/resil"
	"loopscope/internal/stats"
)

// ErrInjected is the base error every injected fault wraps, so tests
// and logs can tell a chaos-made failure from a real one with
// errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Rule schedules faults for one operation. Invocations of the
// operation are counted from zero; the rule applies inside the
// half-open window [Start, End) (End 0 means unbounded), firing with
// probability Prob on each invocation in the window.
type Rule struct {
	// Op is the injection point the rule targets.
	Op resil.Op
	// Start and End bound the invocation window [Start, End); End 0
	// leaves the window open-ended.
	Start, End int64
	// Prob is the per-invocation fault probability in (0, 1]; values
	// above 1 always fire.
	Prob float64
	// Err is the fault to inject, wrapped together with ErrInjected.
	// A nil Err with a positive Delay injects latency only.
	Err error
	// Delay, when positive, is slept before returning — a slow
	// dependency rather than (or in addition to) a failing one.
	Delay time.Duration
}

// FaultRecord is one injected fault, kept for the plan's log.
type FaultRecord struct {
	Op         string    `json:"op"`
	Invocation int64     `json:"invocation"`
	Err        string    `json:"err,omitempty"`
	DelayMs    int64     `json:"delay_ms,omitempty"`
	At         time.Time `json:"at"`
}

// Plan is a seeded, deterministic runtime fault schedule implementing
// resil.Injector. Each operation keeps its own invocation counter and
// its own RNG (derived from the plan seed and the op name), so whether
// the journal's 37th write fails does not depend on how many webhook
// posts raced ahead of it — the fault sequence per component is a pure
// function of (seed, rules), which is what lets a chaos soak compare
// runs.
type Plan struct {
	rules []Rule

	mu    sync.Mutex
	seed  uint64
	count map[resil.Op]int64
	rngs  map[resil.Op]*stats.RNG
	log   []FaultRecord
}

// NewPlan returns a Plan injecting faults per rules, with all draws
// derived from seed.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	return &Plan{
		rules: rules,
		seed:  seed,
		count: make(map[resil.Op]int64),
		rngs:  make(map[resil.Op]*stats.RNG),
	}
}

// opRNG returns the op's RNG, creating it from the plan seed and the
// op name on first use. Caller holds the lock.
func (p *Plan) opRNG(op resil.Op) *stats.RNG {
	rng, ok := p.rngs[op]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(op))
		rng = stats.NewRNG(p.seed ^ h.Sum64())
		p.rngs[op] = rng
	}
	return rng
}

// Fault implements resil.Injector.
func (p *Plan) Fault(op resil.Op) error {
	p.mu.Lock()
	n := p.count[op]
	p.count[op] = n + 1

	var fire *Rule
	for i := range p.rules {
		r := &p.rules[i]
		if r.Op != op || n < r.Start || (r.End > 0 && n >= r.End) {
			continue
		}
		if r.Prob < 1 && !p.opRNG(op).Bool(r.Prob) {
			continue
		}
		fire = r
		break
	}
	var rec FaultRecord
	if fire != nil {
		rec = FaultRecord{Op: string(op), Invocation: n, DelayMs: fire.Delay.Milliseconds(), At: time.Now().UTC()}
		if fire.Err != nil {
			rec.Err = fire.Err.Error()
		}
		p.log = append(p.log, rec)
	}
	p.mu.Unlock()

	if fire == nil {
		return nil
	}
	if fire.Delay > 0 {
		time.Sleep(fire.Delay)
	}
	if fire.Err == nil {
		return nil
	}
	return fmt.Errorf("%w: %s invocation %d: %w", ErrInjected, op, n, fire.Err)
}

// Invocations returns how many times op has been reached so far.
func (p *Plan) Invocations(op resil.Op) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count[op]
}

// Log returns a copy of the faults injected so far, in order.
func (p *Plan) Log() []FaultRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FaultRecord, len(p.log))
	copy(out, p.log)
	return out
}

// WriteLog writes the fault log as JSONL to path — the artifact the
// chaos-soak CI job archives so a failing run can be replayed by hand.
func (p *Plan) WriteLog(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rec := range p.Log() {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
