package core

import (
	"testing"
	"time"

	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// mkPkt builds a serialisable UDP packet towards dst with the given IP
// ID; the payload seed keys the transport checksum, standing in for
// payload content.
func mkPkt(src, dst string, id uint16, ttl uint8, seed uint64) packet.Packet {
	return packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, TTL: ttl, Protocol: packet.ProtoUDP,
			Src: packet.MustParseAddr(src), Dst: packet.MustParseAddr(dst),
			ID: id,
		},
		Kind:         packet.KindUDP,
		UDP:          packet.UDPHeader{SrcPort: 1234, DstPort: 80},
		HasTransport: true,
		PayloadLen:   64,
		PayloadSeed:  seed,
	}
}

// rec serialises pkt into a 40-byte snapshot record at time t.
func rec(t *testing.T, at time.Duration, pkt packet.Packet) trace.Record {
	t.Helper()
	buf := make([]byte, trace.DefaultSnapLen)
	n, err := pkt.Serialize(buf, trace.DefaultSnapLen)
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return trace.Record{Time: at, WireLen: pkt.WireLen(), Data: buf[:n]}
}

// replicaRun emits n replicas of one packet starting at start, spaced
// by gap, with the TTL dropping by delta each time.
func replicaRun(t *testing.T, start time.Duration, gap time.Duration, pkt packet.Packet, n, delta int) []trace.Record {
	t.Helper()
	var out []trace.Record
	ttl := int(pkt.IP.TTL)
	for i := 0; i < n; i++ {
		p := pkt
		p.IP.TTL = uint8(ttl)
		out = append(out, rec(t, start+time.Duration(i)*gap, p))
		ttl -= delta
		if ttl <= 0 {
			break
		}
	}
	return out
}

func sortRecords(recs []trace.Record) {
	// Insertion sort keeps the helper dependency-free and traces are
	// small in tests.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Time < recs[j-1].Time; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func TestDetectSingleStream(t *testing.T) {
	var recs []trace.Record
	pkt := mkPkt("192.0.2.1", "203.0.113.5", 77, 62, 1)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, pkt, 10, 2)...)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(res.Streams))
	}
	s := res.Streams[0]
	if s.Count() != 10 {
		t.Errorf("replicas = %d, want 10", s.Count())
	}
	if got := s.TTLDelta(); got != 2 {
		t.Errorf("TTL delta = %d, want 2", got)
	}
	if s.Prefix != routing.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("prefix = %v", s.Prefix)
	}
	if got := s.MeanSpacing(); got != 10*time.Millisecond {
		t.Errorf("mean spacing = %v, want 10ms", got)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(res.Loops))
	}
	if res.LoopedPackets != 10 {
		t.Errorf("looped packets = %d, want 10", res.LoopedPackets)
	}
}

func TestDetectPairDiscarded(t *testing.T) {
	var recs []trace.Record
	pkt := mkPkt("192.0.2.1", "203.0.113.5", 9, 64, 2)
	recs = append(recs, replicaRun(t, time.Second, 5*time.Millisecond, pkt, 2, 2)...)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 0 {
		t.Fatalf("streams = %d, want 0 (pair is a link-layer duplicate)", len(res.Streams))
	}
	if res.PairsDiscarded != 1 {
		t.Errorf("pairs discarded = %d, want 1", res.PairsDiscarded)
	}
}

func TestDetectTTLDeltaOneRejected(t *testing.T) {
	var recs []trace.Record
	pkt := mkPkt("192.0.2.1", "203.0.113.5", 10, 64, 3)
	recs = append(recs, replicaRun(t, time.Second, 5*time.Millisecond, pkt, 6, 1)...)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 0 {
		t.Fatalf("streams = %d, want 0 (delta-1 runs are not loops)", len(res.Streams))
	}
}

func TestDetectSubnetInvalidation(t *testing.T) {
	var recs []trace.Record
	loop := mkPkt("192.0.2.1", "203.0.113.5", 11, 64, 4)
	recs = append(recs, replicaRun(t, time.Second, 20*time.Millisecond, loop, 8, 2)...)
	// A different packet to the same /24 crossing cleanly (one
	// observation) in the middle of the stream window refutes it.
	clean := mkPkt("192.0.2.2", "203.0.113.99", 500, 61, 5)
	recs = append(recs, rec(t, time.Second+50*time.Millisecond, clean))
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 0 {
		t.Fatalf("streams = %d, want 0 (subnet validation must reject)", len(res.Streams))
	}
	if res.SubnetInvalidated != 1 {
		t.Errorf("subnet invalidated = %d, want 1", res.SubnetInvalidated)
	}

	// The same trace with validation off keeps the stream.
	cfg := DefaultConfig()
	cfg.ValidateSubnet = false
	res = DetectRecords(recs, cfg)
	if len(res.Streams) != 1 {
		t.Fatalf("streams without validation = %d, want 1", len(res.Streams))
	}
}

func TestDetectConcurrentLoopedPacketsValidate(t *testing.T) {
	// Two packets to the same /24 both looping: each stream's window
	// contains the other's replicas, which are members, so both
	// validate.
	var recs []trace.Record
	a := mkPkt("192.0.2.1", "203.0.113.5", 21, 64, 6)
	b := mkPkt("192.0.2.3", "203.0.113.8", 22, 128, 7)
	recs = append(recs, replicaRun(t, time.Second, 20*time.Millisecond, a, 8, 2)...)
	recs = append(recs, replicaRun(t, time.Second+7*time.Millisecond, 20*time.Millisecond, b, 8, 2)...)
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(res.Streams))
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d, want 1 (overlapping streams merge)", len(res.Loops))
	}
	if got := res.Loops[0].Replicas(); got != 16 {
		t.Errorf("loop replicas = %d, want 16", got)
	}
}

func TestMergeWindow(t *testing.T) {
	mk := func(gap time.Duration) *Result {
		var recs []trace.Record
		a := mkPkt("192.0.2.1", "203.0.113.5", 31, 64, 8)
		b := mkPkt("192.0.2.1", "203.0.113.5", 32, 64, 9)
		recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, a, 6, 2)...)
		recs = append(recs, replicaRun(t, time.Second+gap, 10*time.Millisecond, b, 6, 2)...)
		sortRecords(recs)
		return DetectRecords(recs, DefaultConfig())
	}

	res := mk(30 * time.Second)
	if len(res.Streams) != 2 || len(res.Loops) != 1 {
		t.Errorf("30s apart: streams=%d loops=%d, want 2 streams merged into 1 loop",
			len(res.Streams), len(res.Loops))
	}
	res = mk(90 * time.Second)
	if len(res.Streams) != 2 || len(res.Loops) != 2 {
		t.Errorf("90s apart: streams=%d loops=%d, want 2 separate loops",
			len(res.Streams), len(res.Loops))
	}
}

func TestMergeBlockedByCleanTraffic(t *testing.T) {
	// Two streams 30 s apart, but a clean packet to the subnet sits
	// in the gap: the loop evidently healed in between, so the
	// streams must remain separate loops.
	var recs []trace.Record
	a := mkPkt("192.0.2.1", "203.0.113.5", 41, 64, 10)
	b := mkPkt("192.0.2.1", "203.0.113.5", 42, 64, 11)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, a, 6, 2)...)
	recs = append(recs, rec(t, 15*time.Second, mkPkt("192.0.2.9", "203.0.113.77", 900, 60, 12)))
	recs = append(recs, replicaRun(t, 31*time.Second, 10*time.Millisecond, b, 6, 2)...)
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(res.Streams))
	}
	if len(res.Loops) != 2 {
		t.Fatalf("loops = %d, want 2 (clean traffic in the gap blocks the merge)", len(res.Loops))
	}
}

func TestDistinctPacketsDistinctStreams(t *testing.T) {
	// Same flow, different IP IDs (and different payload seeds):
	// never replicas of each other.
	var recs []trace.Record
	a := mkPkt("192.0.2.1", "203.0.113.5", 51, 64, 13)
	b := mkPkt("192.0.2.1", "203.0.113.5", 52, 64, 14)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, a, 5, 2)...)
	recs = append(recs, replicaRun(t, time.Second+3*time.Millisecond, 10*time.Millisecond, b, 5, 2)...)
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(res.Streams))
	}
	for _, s := range res.Streams {
		if s.Count() != 5 {
			t.Errorf("stream %d has %d replicas, want 5", s.ID, s.Count())
		}
	}
}

func TestRetransmissionStartsNewStream(t *testing.T) {
	// A genuine TCP retransmission reuses payload but gets a new IP
	// ID in real stacks; if a middlebox re-emitted identical bytes
	// with a NON-decreasing TTL, the detector must not extend the old
	// stream.
	pkt := mkPkt("192.0.2.1", "203.0.113.5", 61, 64, 15)
	var recs []trace.Record
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, pkt, 4, 2)...)
	// Reappearance at the original TTL.
	recs = append(recs, rec(t, 2*time.Second, pkt))
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(res.Streams))
	}
	if res.Streams[0].Count() != 4 {
		t.Errorf("stream length = %d, want 4 (reappearance must not join)", res.Streams[0].Count())
	}
}

func TestEscapedHeuristic(t *testing.T) {
	// Stream ending at TTL 40 with delta 2: the packet clearly did
	// not expire in the loop — it escaped when the loop healed.
	pkt := mkPkt("192.0.2.1", "203.0.113.5", 71, 64, 16)
	recs := replicaRun(t, time.Second, 10*time.Millisecond, pkt, 5, 2) // TTLs 64..56
	res := DetectRecords(recs, DefaultConfig())
	if len(res.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(res.Streams))
	}
	if !res.Streams[0].Escaped() {
		t.Errorf("stream ending at TTL %d should be classified escaped", res.Streams[0].LastTTL())
	}

	// Run the TTL down to (almost) nothing: the packet died inside.
	pkt2 := mkPkt("192.0.2.1", "203.0.113.6", 72, 8, 17)
	recs2 := replicaRun(t, time.Second, 10*time.Millisecond, pkt2, 10, 2) // TTLs 8,6,4,2
	res2 := DetectRecords(recs2, DefaultConfig())
	if len(res2.Streams) != 1 {
		t.Fatalf("streams = %d, want 1", len(res2.Streams))
	}
	if res2.Streams[0].Escaped() {
		t.Errorf("stream ending at TTL %d should be classified expired", res2.Streams[0].LastTTL())
	}
}

func TestMembershipIndex(t *testing.T) {
	var recs []trace.Record
	loop := mkPkt("192.0.2.1", "203.0.113.5", 81, 64, 18)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, loop, 5, 2)...)
	recs = append(recs, rec(t, 10*time.Second, mkPkt("192.0.2.4", "198.51.100.1", 82, 60, 19)))
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Membership) != len(recs) {
		t.Fatalf("membership length = %d, want %d", len(res.Membership), len(recs))
	}
	members := 0
	for _, m := range res.Membership {
		if m >= 0 {
			members++
		}
	}
	if members != 5 {
		t.Errorf("members = %d, want 5", members)
	}
	if res.Membership[len(recs)-1] != -1 {
		t.Errorf("clean packet marked as member")
	}
}

func TestSplitPersistence(t *testing.T) {
	mkLoop := func(start, end time.Duration) *Loop {
		return &Loop{Start: start, End: end}
	}
	res := &Result{Loops: []*Loop{
		mkLoop(1*time.Second, 3*time.Second),                               // short, early: transient
		mkLoop(10*time.Second, 9*time.Minute+50*time.Second),               // long, active at end: persistent
		mkLoop(9*time.Minute+30*time.Second, 9*time.Minute+55*time.Second), // active at end but short: transient
		mkLoop(2*time.Minute, 5*time.Minute),                               // long but healed mid-trace: transient
	}}
	split := res.SplitPersistence(10*time.Minute, time.Minute, time.Minute)
	if len(split.Persistent) != 1 {
		t.Fatalf("persistent = %d, want 1", len(split.Persistent))
	}
	if split.Persistent[0] != res.Loops[1] {
		t.Error("wrong loop classified persistent")
	}
	if len(split.Transient) != 3 {
		t.Errorf("transient = %d, want 3", len(split.Transient))
	}
}

func TestExtractLoopRecords(t *testing.T) {
	var recs []trace.Record
	loopPkt := mkPkt("192.0.2.1", "203.0.113.5", 91, 64, 30)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, loopPkt, 6, 2)...)
	// Context packet towards the same prefix shortly before the loop.
	recs = append(recs, rec(t, 900*time.Millisecond, mkPkt("192.0.2.2", "203.0.113.6", 92, 60, 31)))
	// Unrelated traffic.
	recs = append(recs, rec(t, time.Second, mkPkt("192.0.2.3", "198.51.100.1", 93, 60, 32)))
	sortRecords(recs)

	res := DetectRecords(recs, DefaultConfig())
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %d", len(res.Loops))
	}

	// Without context: exactly the six replicas.
	got := ExtractLoopRecords(recs, res.Loops[0], 0)
	if len(got) != 6 {
		t.Fatalf("extracted %d records, want 6", len(got))
	}
	if err := trace.Validate(got); err != nil {
		t.Fatal(err)
	}

	// With context: also the same-prefix packet nearby, but never the
	// unrelated one.
	got = ExtractLoopRecords(recs, res.Loops[0], 500*time.Millisecond)
	if len(got) != 7 {
		t.Fatalf("extracted %d records with context, want 7", len(got))
	}
	for _, r := range got {
		p, err := packet.Decode(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		if p.IP.Dst[0] != 203 {
			t.Errorf("unrelated record extracted: dst %v", p.IP.Dst)
		}
	}
}
