package core

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"time"

	"loopscope/internal/obs/flight"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// Detector runs the three-step algorithm. Create with NewDetector,
// feed records in capture order with Observe, then call Finish.
type Detector struct {
	cfg Config

	active map[uint64][]*builder
	// flushed builders with >= MemberReplicas replicas, in flush
	// order.
	flushed []*builder
	// memberOf[i] is the membership serial of record i, or -1.
	memberOf []int32
	// times[i] and prefixes[i] index every record for the subnet
	// validation.
	times    []time.Duration
	byPrefix map[routing.Prefix][]int32

	nextSerial  int32
	n           int
	parseErrors int
	pairs       int

	// fr, when non-nil, receives lifecycle events for the flight
	// recorder. Recording never changes detection decisions.
	fr *flight.ShardRecorder

	// expiry is a FIFO of (builder, lastTime-when-enqueued) used to
	// retire stale builders in amortized O(1) per record instead of
	// sweeping the whole active map (which profiling showed at ~20%
	// of detection time on large traces). A builder that grew since
	// being enqueued is simply re-enqueued at its new lastTime.
	expiry     []expiryEntry
	expiryHead int
}

// NewDetector returns a detector with the given configuration. It
// panics on an invalid configuration; use New for an error-returning
// constructor.
func NewDetector(cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Detector{
		cfg:      cfg,
		active:   make(map[uint64][]*builder),
		byPrefix: make(map[routing.Prefix][]int32),
	}
}

// SetFlight attaches a flight-recorder shard. Call before the first
// Observe; a nil shard (the default) keeps recording disabled.
func (d *Detector) SetFlight(sr *flight.ShardRecorder) { d.fr = sr }

// Observe processes the next trace record. Records must arrive in
// non-decreasing time order.
func (d *Detector) Observe(rec trace.Record) {
	idx := d.n
	d.n++
	d.memberOf = append(d.memberOf, -1)
	d.times = append(d.times, rec.Time)

	pkt, err := packet.Decode(rec.Data)
	if err != nil {
		d.parseErrors++
		return
	}
	pfx := routing.PrefixOf(pkt.IP.Dst, d.cfg.PrefixBits)
	d.byPrefix[pfx] = append(d.byPrefix[pfx], int32(idx))

	masked := maskReplica(rec.Data)
	h := fnv64a(masked)
	rep := Replica{Time: rec.Time, TTL: pkt.IP.TTL, Index: idx}

	var match *builder
	for _, b := range d.active[h] {
		if bytes.Equal(b.masked, masked) {
			match = b
			break
		}
	}
	switch delta := 0; {
	case match == nil:
		d.startBuilder(h, masked, pfx, &pkt, rep)
	case rec.Time-match.lastTime > d.cfg.MaxReplicaGap:
		// Stale stream: close it and start fresh.
		d.flush(match, flight.ReasonReplicaGap)
		d.removeActive(match)
		d.startBuilder(h, masked, pfx, &pkt, rep)
	default:
		delta = int(match.lastTTL) - int(pkt.IP.TTL)
		switch {
		case delta >= d.cfg.MinTTLDelta:
			match.replicas = append(match.replicas, rep)
			match.observe(pkt.IP.TTL, rec.Time)
			if d.fr != nil {
				d.frExtend(match, rep, delta)
			}
		case delta >= 0:
			// Same bytes, TTL decrement below the loop threshold: a
			// link-layer duplicate of the last observation. Record it
			// as belonging to this packet (so it cannot refute a
			// concurrent loop in step 2) without extending the
			// stream.
			match.extras = append(match.extras, idx)
			match.observe(pkt.IP.TTL, rec.Time)
			if d.fr != nil && match.frOpen && d.fr.SampleReplica(len(match.extras)) {
				d.fr.Record(flight.Event{Time: rec.Time, Kind: flight.KindDuplicate,
					Prefix: match.prefix, Stream: match.hash, TTL: pkt.IP.TTL, Delta: delta})
			}
		default:
			// TTL went back up: a reappearance of the original
			// packet (e.g. an identical retransmission through a
			// middlebox). Close the old stream and start a new one.
			d.flush(match, flight.ReasonTTLRise)
			d.removeActive(match)
			d.startBuilder(h, masked, pfx, &pkt, rep)
		}
	}

	// Expire stale streams so memory tracks the number of concurrent
	// loops, not trace length.
	d.expire(rec.Time)
}

func (d *Detector) startBuilder(h uint64, masked []byte, pfx routing.Prefix, pkt *packet.Packet, rep Replica) {
	b := &builder{
		masked:   masked,
		hash:     h,
		prefix:   pfx,
		summary:  summarize(pkt),
		replicas: []Replica{rep},
		serial:   -1,
		lastTTL:  rep.TTL,
		lastTime: rep.Time,
	}
	d.active[h] = append(d.active[h], b)
	d.expiry = append(d.expiry, expiryEntry{b: b, at: rep.Time})
}

func (d *Detector) removeActive(b *builder) {
	b.done = true
	lst := d.active[b.hash]
	for i, x := range lst {
		if x == b {
			lst[i] = lst[len(lst)-1]
			d.active[b.hash] = lst[:len(lst)-1]
			break
		}
	}
	if len(d.active[b.hash]) == 0 {
		delete(d.active, b.hash)
	}
}

// expire retires builders whose last observation is older than
// MaxReplicaGap, by draining the head of the expiry FIFO.
func (d *Detector) expire(now time.Duration) {
	for d.expiryHead < len(d.expiry) {
		e := d.expiry[d.expiryHead]
		if now-e.at <= d.cfg.MaxReplicaGap {
			break
		}
		d.expiryHead++
		if e.b.done {
			continue
		}
		if now-e.b.lastTime > d.cfg.MaxReplicaGap {
			d.flush(e.b, flight.ReasonReplicaGap)
			d.removeActive(e.b)
		} else {
			// Grew since enqueueing: check again later.
			d.expiry = append(d.expiry, expiryEntry{b: e.b, at: e.b.lastTime})
		}
	}
	// Compact the drained prefix occasionally.
	if d.expiryHead > 4096 && d.expiryHead*2 > len(d.expiry) {
		n := copy(d.expiry, d.expiry[d.expiryHead:])
		d.expiry = d.expiry[:n]
		d.expiryHead = 0
	}
}

// frExtend records a sampled replica-extension event, lazily opening
// the stream's flight record on its second replica so non-looping
// traffic (single-replica builders) never touches the recorder.
func (d *Detector) frExtend(b *builder, rep Replica, delta int) {
	if !b.frOpen {
		b.frOpen = true
		first := b.replicas[0]
		d.fr.Record(flight.Event{Time: first.Time, Kind: flight.KindStreamOpen,
			Prefix: b.prefix, Stream: b.hash, TTL: first.TTL})
	}
	if n := len(b.replicas); d.fr.SampleReplica(n) {
		d.fr.Record(flight.Event{Time: rep.Time, Kind: flight.KindReplica,
			Prefix: b.prefix, Stream: b.hash, TTL: rep.TTL, Delta: delta, Count: n})
	}
}

// flush retires a builder: single observations vanish, pairs are
// counted as link-layer duplicates, larger sets become membership-
// bearing candidate streams.
func (d *Detector) flush(b *builder, why flight.Reason) {
	n := len(b.replicas)
	if d.fr != nil && b.frOpen {
		d.fr.Record(flight.Event{Time: b.lastTime, Kind: flight.KindStreamClose,
			Reason: why, Prefix: b.prefix, Stream: b.hash, Count: n})
	}
	if n < d.cfg.MemberReplicas {
		return
	}
	if n == 2 {
		d.pairs++
	}
	b.serial = d.nextSerial
	d.nextSerial++
	for _, r := range b.replicas {
		d.memberOf[r.Index] = b.serial
	}
	for _, idx := range b.extras {
		d.memberOf[idx] = b.serial
	}
	d.flushed = append(d.flushed, b)
}

// Finish closes all open streams, runs validation and merging, and
// returns the result.
func (d *Detector) Finish() *Result {
	for _, lst := range d.active {
		for _, b := range lst {
			if !b.done {
				d.flush(b, flight.ReasonEndOfTrace)
				b.done = true
			}
		}
	}
	d.active = make(map[uint64][]*builder)
	d.expiry, d.expiryHead = nil, 0

	res := &Result{
		TotalPackets: d.n,
		ParseErrors:  d.parseErrors,
		Membership:   make([]int32, d.n),
	}
	for i := range res.Membership {
		res.Membership[i] = -1
	}

	// Step 2: validation.
	var candidates []*builder
	for _, b := range d.flushed {
		n := len(b.replicas)
		if n < d.cfg.MinReplicas {
			// Two-element sets (or anything below the evidence bar):
			// not loop evidence on their own.
			if d.fr != nil && b.frOpen {
				why := flight.ReasonBelowMinReplicas
				if n == 2 {
					why = flight.ReasonPairDiscarded
				}
				d.fr.Record(flight.Event{Time: b.replicas[0].Time, Kind: flight.KindReject,
					Reason: why, Prefix: b.prefix, Stream: b.hash, Count: n})
			}
			continue
		}
		if d.fr != nil && b.frOpen {
			d.fr.Record(flight.Event{Time: b.replicas[0].Time, Kind: flight.KindCandidate,
				Prefix: b.prefix, Stream: b.hash, Count: n})
		}
		if d.cfg.ValidateSubnet && !d.subnetClean(b.prefix, b.replicas[0].Time, b.replicas[n-1].Time) {
			res.SubnetInvalidated++
			if d.fr != nil && b.frOpen {
				d.fr.Record(flight.Event{Time: b.replicas[0].Time, Kind: flight.KindReject,
					Reason: flight.ReasonSubnetInvalidated, Prefix: b.prefix, Stream: b.hash, Count: n})
			}
			continue
		}
		if d.fr != nil && b.frOpen {
			d.fr.Record(flight.Event{Time: b.replicas[0].Time, Kind: flight.KindValidated,
				Prefix: b.prefix, Stream: b.hash, Count: n})
		}
		candidates = append(candidates, b)
	}
	res.PairsDiscarded = d.pairs

	// Canonical order: first-replica time, then first-replica index.
	// The index tie-break makes the order a total one, so every Engine
	// implementation (sequential, naive, parallel shards) numbers the
	// same streams identically.
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i].replicas[0], candidates[j].replicas[0]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Index < b.Index
	})
	for i, b := range candidates {
		s := &ReplicaStream{
			ID:       i,
			Prefix:   b.prefix,
			Replicas: b.replicas,
			Summary:  b.summary,
		}
		res.Streams = append(res.Streams, s)
		res.LoopedPackets += len(b.replicas)
		for _, r := range b.replicas {
			res.Membership[r.Index] = int32(i)
		}
	}

	// Step 3: merging.
	res.Loops = d.merge(res.Streams)
	return res
}

// subnetClean reports whether every packet towards pfx in [from, to]
// belongs to some replica stream (of at least MemberReplicas
// replicas). A loop must capture all traffic to the prefix; a
// non-looping packet in the window refutes the stream.
func (d *Detector) subnetClean(pfx routing.Prefix, from, to time.Duration) bool {
	idxs := d.byPrefix[pfx]
	lo := sort.Search(len(idxs), func(i int) bool {
		return d.times[idxs[i]] >= from
	})
	for i := lo; i < len(idxs) && d.times[idxs[i]] <= to; i++ {
		if d.memberOf[idxs[i]] < 0 {
			return false
		}
	}
	return true
}

// merge folds validated streams into loops: same prefix and
// overlapping, or separated by less than MergeWindow with no
// non-looped same-subnet packet in the gap.
func (d *Detector) merge(streams []*ReplicaStream) []*Loop {
	byPfx := make(map[routing.Prefix][]*ReplicaStream)
	for _, s := range streams {
		byPfx[s.Prefix] = append(byPfx[s.Prefix], s)
	}
	var loops []*Loop
	for pfx, ss := range byPfx {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].Start() != ss[j].Start() {
				return ss[i].Start() < ss[j].Start()
			}
			return ss[i].Replicas[0].Index < ss[j].Replicas[0].Index
		})
		cur := &Loop{Prefix: pfx, Streams: []*ReplicaStream{ss[0]},
			Start: ss[0].Start(), End: ss[0].End()}
		if d.fr != nil {
			d.fr.Record(flight.Event{Time: cur.Start, Kind: flight.KindLoopOpen, Prefix: pfx})
		}
		for _, s := range ss[1:] {
			switch {
			case s.Start() <= cur.End:
				// Overlap: same loop.
				cur.Streams = append(cur.Streams, s)
				if s.End() > cur.End {
					cur.End = s.End()
				}
				if d.fr != nil {
					d.fr.Record(flight.Event{Time: s.Start(), Kind: flight.KindMerge,
						Prefix: pfx, Count: len(cur.Streams)})
				}
			case s.Start()-cur.End < d.cfg.MergeWindow &&
				(!d.cfg.ValidateSubnet || d.subnetClean(pfx, cur.End, s.Start())):
				// Close in time with no contradicting traffic in the
				// gap: the loop simply had no detectable replicas for
				// a while.
				gap := s.Start() - cur.End
				cur.Streams = append(cur.Streams, s)
				if s.End() > cur.End {
					cur.End = s.End()
				}
				if d.fr != nil {
					d.fr.Record(flight.Event{Time: s.Start(), Kind: flight.KindMerge,
						Prefix: pfx, Count: len(cur.Streams), Gap: gap})
				}
			default:
				if d.fr != nil {
					d.fr.Record(flight.Event{Time: cur.End, Kind: flight.KindLoopFinal,
						Prefix: pfx, Count: len(cur.Streams)})
					why := flight.ReasonDirtyGap
					if s.Start()-cur.End >= d.cfg.MergeWindow {
						why = flight.ReasonMergeGapWide
					}
					d.fr.Record(flight.Event{Time: s.Start(), Kind: flight.KindLoopOpen,
						Reason: why, Prefix: pfx})
				}
				loops = append(loops, cur)
				cur = &Loop{Prefix: pfx, Streams: []*ReplicaStream{s},
					Start: s.Start(), End: s.End()}
			}
		}
		if d.fr != nil {
			d.fr.Record(flight.Event{Time: cur.End, Kind: flight.KindLoopFinal,
				Prefix: pfx, Count: len(cur.Streams)})
		}
		loops = append(loops, cur)
	}
	sort.SliceStable(loops, func(i, j int) bool {
		if loops[i].Start != loops[j].Start {
			return loops[i].Start < loops[j].Start
		}
		return loops[i].Prefix.Addr.Uint32() < loops[j].Prefix.Addr.Uint32()
	})
	return loops
}

// DetectRecords runs the full pipeline over an in-memory trace.
func DetectRecords(recs []trace.Record, cfg Config) *Result {
	d := NewDetector(cfg)
	for _, r := range recs {
		d.Observe(r)
	}
	return d.Finish()
}

// DetectSource runs the full pipeline over a trace source.
func DetectSource(src trace.Source, cfg Config) (*Result, error) {
	d := NewDetector(cfg)
	for {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		d.Observe(rec)
	}
	return d.Finish(), nil
}
