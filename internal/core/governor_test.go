package core

import (
	"fmt"
	"testing"
	"time"

	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// stormTrace builds an IPID-collision storm: ground-truth loops on
// nLoops prefixes buried in a flood of distinct one-off packets, each
// of which starts (and never extends) its own stream builder. The
// returned ground truth maps loop prefixes to their time windows.
func stormTrace(t *testing.T, nLoops, nStorm int) ([]trace.Record, map[routing.Prefix][2]time.Duration) {
	t.Helper()
	var recs []trace.Record
	truth := make(map[routing.Prefix][2]time.Duration)
	for i := 0; i < nLoops; i++ {
		pkt := mkPkt("192.0.2.9", fmt.Sprintf("198.18.%d.5", i), uint16(1000+i), 60, uint64(i+1))
		start := 500*time.Millisecond + time.Duration(i)*10*time.Millisecond
		run := replicaRun(t, start, 20*time.Millisecond, pkt, 10, 2)
		recs = append(recs, run...)
		pfx := routing.PrefixOf(pkt.IP.Dst, 24)
		truth[pfx] = [2]time.Duration{run[0].Time, run[len(run)-1].Time}
	}
	for i := 0; i < nStorm; i++ {
		// Distinct dst, src and IPID per packet: every one is a new
		// stream that will never see a second replica.
		dst := fmt.Sprintf("10.%d.%d.1", (i/250)%250, i%250)
		src := fmt.Sprintf("172.16.%d.%d", (i/200)%200, i%200)
		pkt := mkPkt(src, dst, uint16(i), 64, uint64(i))
		at := 100*time.Millisecond + time.Duration(i)*200*time.Microsecond
		recs = append(recs, rec(t, at, pkt))
	}
	sortRecords(recs)
	return recs, truth
}

// runStorm feeds recs through a StreamDetector, tracking the peak live
// builder count after every record.
func runStorm(cfg Config, recs []trace.Record) (loops []*Loop, peak int, stats StreamStats) {
	sd := NewStreamDetector(cfg, func(l *Loop) { loops = append(loops, l) })
	for _, r := range recs {
		sd.Observe(r)
		if n := sd.LiveBuilders(); n > peak {
			peak = n
		}
	}
	stats = sd.FinishStats()
	return loops, peak, stats
}

func TestGovernorEnforcesCapUnderStorm(t *testing.T) {
	const cap = 512
	recs, truth := stormTrace(t, 20, 8000)

	base := DefaultConfig()
	baseLoops, basePeak, baseStats := runStorm(base, recs)
	if basePeak <= cap {
		t.Fatalf("storm too weak: uncapped peak %d builders, need > %d for the test to mean anything", basePeak, cap)
	}
	if baseStats.ShedStreams != 0 || baseStats.ShedPackets != 0 {
		t.Fatalf("uncapped run shed state: %+v", baseStats)
	}
	if len(baseLoops) < 20 {
		t.Fatalf("uncapped run found %d loops, want >= 20", len(baseLoops))
	}

	capped := base
	capped.MaxActiveStreams = cap
	capLoops, capPeak, capStats := runStorm(capped, recs)
	if capPeak > cap {
		t.Fatalf("governor let live builders reach %d, cap is %d", capPeak, cap)
	}
	if capStats.ShedStreams == 0 {
		t.Fatal("governor shed no streams under a storm that exceeds the cap")
	}
	// The acceptance bar: >= 90% of ground-truth loops still recalled.
	recalled := 0
	for pfx, win := range truth {
		for _, l := range capLoops {
			if l.Prefix == pfx && l.Start <= win[1] && l.End >= win[0] {
				recalled++
				break
			}
		}
	}
	if min := (len(truth)*9 + 9) / 10; recalled < min {
		t.Fatalf("governed detector recalled %d/%d ground-truth loops, want >= %d", recalled, len(truth), min)
	}
	t.Logf("uncapped peak %d, capped peak %d, shed streams %d packets %d, recall %d/%d",
		basePeak, capPeak, capStats.ShedStreams, capStats.ShedPackets, recalled, len(truth))
}

func TestGovernorDeterministic(t *testing.T) {
	recs, _ := stormTrace(t, 8, 3000)
	cfg := DefaultConfig()
	cfg.MaxActiveStreams = 128

	key := func(ls []*Loop) []string {
		var out []string
		for _, l := range ls {
			out = append(out, fmt.Sprintf("%v|%v|%v|%d", l.Prefix, l.Start, l.End, l.Replicas()))
		}
		return out
	}
	a, _, sa := runStorm(cfg, recs)
	b, _, sb := runStorm(cfg, recs)
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		t.Fatalf("same input, different loop counts: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("loop %d differs across identical runs:\n%s\n%s", i, ka[i], kb[i])
		}
	}
	if sa.ShedStreams != sb.ShedStreams || sa.ShedPackets != sb.ShedPackets {
		t.Fatalf("shed counters differ across identical runs: %+v vs %+v", sa, sb)
	}
}

func TestGovernorHighCapMatchesUncapped(t *testing.T) {
	recs, _ := stormTrace(t, 8, 1000)
	base := DefaultConfig()
	uncapped, _, _ := runStorm(base, recs)

	roomy := base
	roomy.MaxActiveStreams = 100000
	capped, _, stats := runStorm(roomy, recs)
	if stats.ShedStreams != 0 || stats.ShedPackets != 0 {
		t.Fatalf("roomy cap shed state: %+v", stats)
	}
	if len(capped) != len(uncapped) {
		t.Fatalf("roomy cap changed loop count: %d vs %d", len(capped), len(uncapped))
	}
	for i := range capped {
		if capped[i].Prefix != uncapped[i].Prefix || capped[i].Start != uncapped[i].Start ||
			capped[i].End != uncapped[i].End || capped[i].Replicas() != uncapped[i].Replicas() {
			t.Fatalf("loop %d differs under a cap that was never hit", i)
		}
	}
}

func TestGovernorSessionShed(t *testing.T) {
	recs, _ := stormTrace(t, 4, 3000)
	cfg := DefaultConfig()
	cfg.MaxActiveStreams = 64
	s, err := NewSession(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		s.Observe(r)
	}
	shed := s.Shed()
	if shed.Streams == 0 {
		t.Fatal("Session.Shed() reports no shed streams under a storm")
	}
	stats := s.Drain()
	if stats.ShedStreams != shed.Streams || stats.ShedPackets < shed.Packets {
		t.Fatalf("drain stats %+v inconsistent with live shed %+v", stats, shed)
	}
}

func TestConfigRejectsNegativeMaxActiveStreams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxActiveStreams = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative MaxActiveStreams")
	}
}
