package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"loopscope/internal/trace"
)

// parallelWorkerCounts is the sweep every differential test runs: the
// degenerate single shard, even splits, and a prime count (so prefix
// striping cannot accidentally line up with the shard count).
var parallelWorkerCounts = []int{1, 2, 4, 7}

// requireSameResult fails the test unless got is byte-identical to
// want in every field the sequential detector reports: counters,
// membership, stream content (including every replica's global index,
// TTL and timestamp) and merged loops.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.TotalPackets != want.TotalPackets ||
		got.ParseErrors != want.ParseErrors ||
		got.LoopedPackets != want.LoopedPackets ||
		got.PairsDiscarded != want.PairsDiscarded ||
		got.SubnetInvalidated != want.SubnetInvalidated {
		t.Fatalf("%s: counters differ: got {total %d parse %d looped %d pairs %d invalidated %d}, want {total %d parse %d looped %d pairs %d invalidated %d}",
			label,
			got.TotalPackets, got.ParseErrors, got.LoopedPackets, got.PairsDiscarded, got.SubnetInvalidated,
			want.TotalPackets, want.ParseErrors, want.LoopedPackets, want.PairsDiscarded, want.SubnetInvalidated)
	}
	if !reflect.DeepEqual(got.Membership, want.Membership) {
		t.Fatalf("%s: membership differs", label)
	}
	if len(got.Streams) != len(want.Streams) {
		t.Fatalf("%s: %d streams, want %d", label, len(got.Streams), len(want.Streams))
	}
	for i := range got.Streams {
		g, w := got.Streams[i], want.Streams[i]
		if g.ID != w.ID || g.Prefix != w.Prefix || g.Summary != w.Summary ||
			!reflect.DeepEqual(g.Replicas, w.Replicas) {
			t.Fatalf("%s: stream %d differs:\n got %v %+v replicas %v\nwant %v %+v replicas %v",
				label, i, g.Prefix, g.Summary, g.Replicas, w.Prefix, w.Summary, w.Replicas)
		}
	}
	if len(got.Loops) != len(want.Loops) {
		t.Fatalf("%s: %d loops, want %d", label, len(got.Loops), len(want.Loops))
	}
	for i := range got.Loops {
		g, w := got.Loops[i], want.Loops[i]
		if g.Prefix != w.Prefix || g.Start != w.Start || g.End != w.End {
			t.Fatalf("%s: loop %d: got %v %v..%v, want %v %v..%v",
				label, i, g.Prefix, g.Start, g.End, w.Prefix, w.Start, w.End)
		}
		if len(g.Streams) != len(w.Streams) {
			t.Fatalf("%s: loop %d has %d streams, want %d", label, i, len(g.Streams), len(w.Streams))
		}
		for j := range g.Streams {
			if g.Streams[j].ID != w.Streams[j].ID {
				t.Fatalf("%s: loop %d stream %d: ID %d, want %d",
					label, i, j, g.Streams[j].ID, w.Streams[j].ID)
			}
		}
	}
}

// TestParallelMatchesSequential is the tentpole's acceptance property:
// across many random traces and every worker count, the sharded
// pipeline must reproduce the sequential Detector's Result exactly —
// same streams with the same global replica indices, same membership,
// same merged loops, same counters.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	for seed := uint64(0); seed < 20; seed++ {
		recs := randomTrace(seed, 6*time.Second, 500, 3)
		want := DetectRecords(recs, cfg)
		for _, w := range parallelWorkerCounts {
			p := NewParallelDetector(cfg, w)
			for _, r := range recs {
				p.Observe(r)
			}
			requireSameResult(t, fmt.Sprintf("seed %d workers %d", seed, w), p.Finish(), want)
		}
	}
}

// TestParallelMatchesSequentialBatched drives the parallel engine
// through ObserveBatch with ragged batch sizes (including ones that
// straddle the internal flush threshold) — the hand-off granularity
// must not leak into the result.
func TestParallelMatchesSequentialBatched(t *testing.T) {
	cfg := DefaultConfig()
	recs := randomTrace(42, 10*time.Second, 900, 5)
	want := DetectRecords(recs, cfg)
	for _, w := range parallelWorkerCounts {
		p := NewParallelDetector(cfg, w)
		for i := 0; i < len(recs); {
			n := 1 + (i*7)%(2*trace.DefaultBatchSize)
			if i+n > len(recs) {
				n = len(recs) - i
			}
			p.ObserveBatch(recs[i : i+n])
			i += n
		}
		requireSameResult(t, fmt.Sprintf("batched workers %d", w), p.Finish(), want)
	}
}

// TestParallelParseErrors mixes undecodable records (truncated below
// the IPv4 header, routed round-robin) into the trace: the parse-error
// count, membership and loop set must still match the sequential run.
func TestParallelParseErrors(t *testing.T) {
	cfg := DefaultConfig()
	recs := randomTrace(7, 6*time.Second, 600, 3)
	for i := 0; i < len(recs); i += 17 {
		recs[i].Data = recs[i].Data[:min(len(recs[i].Data), 1+i%19)]
	}
	want := DetectRecords(recs, cfg)
	if want.ParseErrors == 0 {
		t.Fatal("corruption produced no parse errors; test is vacuous")
	}
	for _, w := range parallelWorkerCounts {
		p := NewParallelDetector(cfg, w)
		for _, r := range recs {
			p.Observe(r)
		}
		requireSameResult(t, fmt.Sprintf("parse-errors workers %d", w), p.Finish(), want)
	}
}

// TestParallelEmptyTrace: Finish with nothing observed must return an
// empty, well-formed Result from every worker count.
func TestParallelEmptyTrace(t *testing.T) {
	for _, w := range parallelWorkerCounts {
		res := NewParallelDetector(DefaultConfig(), w).Finish()
		if res.TotalPackets != 0 || len(res.Streams) != 0 || len(res.Loops) != 0 || len(res.Membership) != 0 {
			t.Errorf("workers %d: non-empty result from empty trace: %+v", w, res)
		}
	}
}

// TestParallelWorkersClamped: worker counts below one are clamped.
func TestParallelWorkersClamped(t *testing.T) {
	p := NewParallelDetector(DefaultConfig(), 0)
	if p.Workers() != 1 {
		t.Errorf("Workers() = %d, want 1", p.Workers())
	}
	if res := p.Finish(); res.TotalPackets != 0 {
		t.Errorf("unexpected packets: %d", res.TotalPackets)
	}
}

// installPanicHook arranges for the first batch consumed by any shard
// worker to panic with the given value, restoring the clean hook when
// the test ends.
func installPanicHook(t *testing.T, v any) {
	t.Helper()
	shardConsumeHook = func(shard int, recs []trace.Record) { panic(v) }
	t.Cleanup(func() { shardConsumeHook = nil })
}

// TestParallelWorkerPanic: a panic inside a worker shard must not kill
// the process or deadlock the producer; FinishErr surfaces it as an
// error wrapping ErrWorkerPanic with the panic value and a stack.
func TestParallelWorkerPanic(t *testing.T) {
	installPanicHook(t, "injected shard fault")
	recs := randomTrace(3, 6*time.Second, 500, 3)
	for _, w := range parallelWorkerCounts {
		p := NewParallelDetector(DefaultConfig(), w)
		// Feed far more batches than the shard channels hold: if the
		// panicked worker stopped draining, or producers kept sending
		// after cancellation, this would deadlock against the bounded
		// channels rather than return.
		for i := 0; i < 40; i++ {
			p.ObserveBatch(recs)
		}
		res, err := p.FinishErr()
		if res != nil {
			t.Fatalf("workers %d: got a result alongside a worker panic", w)
		}
		if !errors.Is(err, ErrWorkerPanic) {
			t.Fatalf("workers %d: error %v does not wrap ErrWorkerPanic", w, err)
		}
		if !strings.Contains(err.Error(), "injected shard fault") {
			t.Errorf("workers %d: error does not carry the panic value: %v", w, err)
		}
		if !strings.Contains(err.Error(), "goroutine") {
			t.Errorf("workers %d: error does not carry a stack trace: %v", w, err)
		}
	}
}

// TestParallelWorkerPanicFinish: the plain Finish re-raises the
// recovered worker panic on the calling goroutine as a typed error
// value the caller can recover.
func TestParallelWorkerPanicFinish(t *testing.T) {
	installPanicHook(t, "finish-path fault")
	p := NewParallelDetector(DefaultConfig(), 2)
	p.ObserveBatch(randomTrace(5, 3*time.Second, 400, 2))
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Finish did not re-raise the worker panic")
		}
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrWorkerPanic) {
			t.Fatalf("recovered %v (%T), want an error wrapping ErrWorkerPanic", v, v)
		}
	}()
	p.Finish()
}

// TestParallelWorkerPanicRun: core.Run over a panicking engine returns
// the wrapped error to the caller instead of crashing — the contract
// the CLI relies on.
func TestParallelWorkerPanicRun(t *testing.T) {
	installPanicHook(t, errors.New("run-path fault"))
	e, err := New(DefaultConfig(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewSliceSource(trace.Meta{Link: "mem"}, randomTrace(9, 6*time.Second, 500, 3))
	res, err := Run(e, src)
	if res != nil {
		t.Fatal("Run returned a result alongside a worker panic")
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("Run error %v does not wrap ErrWorkerPanic", err)
	}
}
