package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"loopscope/internal/routing"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
	"loopscope/internal/traffic"
)

// sessionTestTrace synthesizes a trace with several scripted loops.
func sessionTestTrace(t *testing.T, seed uint64, loops int) []trace.Record {
	t.Helper()
	rng := stats.NewRNG(seed)
	var dests []routing.Prefix
	for i := 0; i < 32; i++ {
		dests = append(dests, routing.MustParsePrefix(fmt.Sprintf("198.18.%d.0/24", i)))
	}
	cfg := traffic.SynthConfig{
		Duration: 90 * time.Second, PacketsPerSecond: 1200,
		Mix: traffic.DefaultMix(), DestPrefixes: dests,
		HopsMin: 3, HopsMax: 9,
	}
	for i := 0; i < loops; i++ {
		cfg.Loops = append(cfg.Loops, traffic.LoopSpec{
			Prefix:     dests[rng.Intn(len(dests))],
			Start:      time.Duration(rng.Int63n(int64(70 * time.Second))),
			Duration:   time.Duration(300+rng.Intn(4000)) * time.Millisecond,
			TTLDelta:   2 + rng.Intn(3),
			Revolution: time.Duration(2000+rng.Intn(4000)) * time.Microsecond,
		})
	}
	return traffic.Synthesize(cfg, rng)
}

// eventKey identifies a loop emission independently of pointer
// identity.
func eventKey(e SessionEvent) string {
	return fmt.Sprintf("%s@%d-%d/%d", e.Loop.Prefix, e.Loop.Start, e.Loop.End, len(e.Loop.Streams))
}

// TestSessionReplayEquivalence is the checkpoint/resume contract: a
// session crashed at record k and resumed by replaying the prefix with
// SetReplay(emitted) must, across the two incarnations, deliver
// exactly the reference run's final emissions — no duplicates, no
// gaps, matching Seq.
func TestSessionReplayEquivalence(t *testing.T) {
	recs := sessionTestTrace(t, 7, 10)
	cfg := DefaultConfig()

	var ref []SessionEvent
	refSess, err := NewSession(cfg, func(e SessionEvent) { ref = append(ref, e) })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		refSess.Observe(r)
	}
	refFinals := refSess.Emitted()
	if refFinals == 0 {
		t.Fatal("reference run emitted no loops; trace too quiet for the test")
	}

	for _, frac := range []float64{0.3, 0.5, 0.8} {
		k := int(float64(len(recs)) * frac)
		t.Run(fmt.Sprintf("crash-at-%d%%", int(frac*100)), func(t *testing.T) {
			// First incarnation: process records[:k], then "crash"
			// (no drain, state abandoned).
			var got []SessionEvent
			s1, err := NewSession(cfg, func(e SessionEvent) { got = append(got, e) })
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs[:k] {
				s1.Observe(r)
			}
			emitted := s1.Emitted()
			if s1.Records() != int64(k) {
				t.Fatalf("Records() = %d, want %d", s1.Records(), k)
			}

			// Second incarnation: replay the prefix suppressed, then
			// continue live.
			s2, err := NewSession(cfg, func(e SessionEvent) { got = append(got, e) })
			if err != nil {
				t.Fatal(err)
			}
			s2.SetReplay(emitted)
			for _, r := range recs[:k] {
				s2.Observe(r)
			}
			if s2.Emitted() < emitted {
				t.Fatalf("replay emitted %d finals, checkpoint said %d", s2.Emitted(), emitted)
			}
			for _, r := range recs[k:] {
				s2.Observe(r)
			}

			if len(got) != len(ref) {
				t.Fatalf("resumed run delivered %d events, reference %d", len(got), len(ref))
			}
			for i := range got {
				if eventKey(got[i]) != eventKey(ref[i]) {
					t.Fatalf("event %d: %s, reference %s", i, eventKey(got[i]), eventKey(ref[i]))
				}
				if got[i].Seq != ref[i].Seq {
					t.Fatalf("event %d: Seq %d, reference %d", i, got[i].Seq, ref[i].Seq)
				}
				if got[i].Truncated {
					t.Fatalf("event %d unexpectedly truncated", i)
				}
			}
			seen := map[string]bool{}
			for _, e := range got {
				k := eventKey(e)
				if seen[k] {
					t.Fatalf("duplicate emission %s", k)
				}
				seen[k] = true
			}
		})
	}
}

// TestSessionDrain checks that Drain flushes outstanding loops marked
// truncated, leaves the final sequence untouched, and that a resumed
// run still completes the truncated loops as finals.
func TestSessionDrain(t *testing.T) {
	recs := sessionTestTrace(t, 11, 8)
	cfg := DefaultConfig()

	// Find a cut where loops are still open: drain right after the
	// middle of the trace.
	k := len(recs) / 2
	var finals, truncated []SessionEvent
	s, err := NewSession(cfg, func(e SessionEvent) {
		if e.Truncated {
			truncated = append(truncated, e)
		} else {
			finals = append(finals, e)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:k] {
		s.Observe(r)
	}
	before := s.Emitted()
	st := s.Drain()
	if s.Emitted() != before {
		t.Fatalf("Drain advanced Emitted from %d to %d", before, s.Emitted())
	}
	if st.TotalPackets != k {
		t.Fatalf("Drain stats count %d packets, want %d", st.TotalPackets, k)
	}
	for _, e := range truncated {
		if e.Seq != -1 {
			t.Fatalf("truncated emission carries Seq %d, want -1", e.Seq)
		}
	}
	// Every truncated loop must be re-deliverable as (part of) a final
	// by a resumed run over the full trace.
	var resumed []SessionEvent
	s2, err := NewSession(cfg, func(e SessionEvent) { resumed = append(resumed, e) })
	if err != nil {
		t.Fatal(err)
	}
	s2.SetReplay(before)
	for _, r := range recs {
		s2.Observe(r)
	}
	s2.Drain()
	for _, tr := range truncated {
		found := false
		for _, e := range resumed {
			if e.Loop.Prefix == tr.Loop.Prefix && e.Loop.Start <= tr.Loop.Start && e.Loop.End >= tr.Loop.End {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("truncated loop %s not covered by any resumed emission", eventKey(tr))
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Observe after Drain did not panic")
		}
	}()
	s.Observe(recs[k])
}

// TestSessionMatchesStreamDetector pins Session as a thin wrapper: the
// final emissions equal the raw StreamDetector's, in order.
func TestSessionMatchesStreamDetector(t *testing.T) {
	recs := sessionTestTrace(t, 3, 6)
	cfg := DefaultConfig()

	var want []*Loop
	sd := NewStreamDetector(cfg, func(l *Loop) { want = append(want, l) })
	for _, r := range recs {
		sd.Observe(r)
	}

	var got []SessionEvent
	s, err := NewSession(cfg, func(e SessionEvent) { got = append(got, e) })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		s.Observe(r)
	}
	if len(got) != len(want) {
		t.Fatalf("session emitted %d, detector %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Loop.Prefix != want[i].Prefix || got[i].Loop.Start != want[i].Start || got[i].Loop.End != want[i].End {
			t.Fatalf("emission %d differs", i)
		}
		if got[i].Seq != i {
			t.Fatalf("emission %d: Seq %d", i, got[i].Seq)
		}
	}
}

func TestNewSessionValidatesConfig(t *testing.T) {
	if _, err := NewSession(Config{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}

// errSource fails after n records.
type errSource struct {
	n   int
	pos int
}

func (s *errSource) Meta() trace.Meta { return trace.Meta{Link: "err"} }
func (s *errSource) Next() (trace.Record, error) {
	if s.pos >= s.n {
		return trace.Record{}, fmt.Errorf("mid-stream fault")
	}
	s.pos++
	data := make([]byte, 40)
	data[0] = 0x45
	return trace.Record{Time: time.Duration(s.pos), WireLen: 40, Data: data}, nil
}

// TestRunSourceErrorReleasesWorkers: a mid-stream source error must
// not leak the parallel detector's shard workers.
func TestRunSourceErrorReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		e, err := New(DefaultConfig(), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(e, &errSource{n: 1000}); err == nil {
			t.Fatal("Run swallowed the source error")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew from %d to %d", before, after)
	}
}
