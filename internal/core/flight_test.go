package core

import (
	"fmt"
	"testing"
	"time"

	"loopscope/internal/obs/flight"
	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// flightTestTrace synthesizes a trace with two mergeable replica
// streams towards one prefix, a second independent loop, a discarded
// pair, and background noise.
func flightTestTrace(t *testing.T) []trace.Record {
	t.Helper()
	var recs []trace.Record
	// Loop A: two streams towards 203.0.113.0/24, 960ms apart — they
	// merge (gap < MergeWindow, nothing contradicting in between).
	recs = append(recs, replicaRun(t, 1*time.Second, 10*time.Millisecond,
		mkPkt("192.0.2.1", "203.0.113.5", 101, 62, 1), 5, 2)...)
	recs = append(recs, replicaRun(t, 2*time.Second, 10*time.Millisecond,
		mkPkt("192.0.2.1", "203.0.113.9", 102, 60, 2), 5, 2)...)
	// Loop B: one stream towards 198.51.100.0/24.
	recs = append(recs, replicaRun(t, 3*time.Second, 5*time.Millisecond,
		mkPkt("192.0.2.7", "198.51.100.20", 201, 58, 3), 8, 2)...)
	// A discarded pair towards 192.0.2.0/24.
	recs = append(recs, replicaRun(t, 4*time.Second, 5*time.Millisecond,
		mkPkt("198.51.100.1", "192.0.2.33", 301, 64, 4), 2, 2)...)
	// Background noise: single packets to scattered prefixes.
	for i := 0; i < 40; i++ {
		recs = append(recs, rec(t, time.Duration(i)*100*time.Millisecond,
			mkPkt("10.0.0.1", fmt.Sprintf("10.9.%d.1", i), uint16(1000+i), 64, uint64(i))))
	}
	sortRecords(recs)
	return recs
}

func flightLoopKey(l *Loop) string {
	return fmt.Sprintf("%s %v %v %d", l.Prefix, l.Start, l.End, len(l.Streams))
}

// TestFlightDoesNotChangeResults proves recording is a pure observer:
// every engine variant produces the identical loop set with and
// without a recorder attached.
func TestFlightDoesNotChangeResults(t *testing.T) {
	recs := flightTestTrace(t)
	cfg := DefaultConfig()
	variants := []struct {
		name string
		opts []Option
	}{
		{"sequential", nil},
		{"parallel", []Option{WithWorkers(4)}},
		{"streaming", []Option{WithStreaming(nil)}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			plain, err := New(cfg, v.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rec := flight.New(flight.Options{SampleEvery: 1})
			instrumented, err := New(cfg, append([]Option{WithFlight(rec)}, v.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				plain.Observe(r)
				instrumented.Observe(r)
			}
			a, b := plain.Finish(), instrumented.Finish()
			if len(a.Loops) != len(b.Loops) {
				t.Fatalf("loops: plain %d, instrumented %d", len(a.Loops), len(b.Loops))
			}
			for i := range a.Loops {
				if flightLoopKey(a.Loops[i]) != flightLoopKey(b.Loops[i]) {
					t.Errorf("loop %d differs: %s vs %s", i, flightLoopKey(a.Loops[i]), flightLoopKey(b.Loops[i]))
				}
			}
			if len(a.Loops) != 2 {
				t.Fatalf("loops = %d, want 2 (merged A and B; the pair is not a loop)", len(a.Loops))
			}
			if rec.Stats().Events == 0 {
				t.Error("recorder saw no events")
			}
		})
	}
}

// kindsOf summarizes which kinds a trail contains.
func kindsOf(tr *flight.Trail) map[flight.Kind]int {
	m := make(map[flight.Kind]int)
	for _, ev := range tr.Events {
		m[ev.Kind]++
	}
	return m
}

// TestFlightTrailLifecycle checks the sealed trail of a merged loop
// tells the whole story: open -> extend -> candidate -> validated ->
// merge -> finalize, for batch and streaming engines alike.
func TestFlightTrailLifecycle(t *testing.T) {
	recs := flightTestTrace(t)
	cfg := DefaultConfig()
	for _, variant := range []string{"sequential", "streaming", "parallel"} {
		t.Run(variant, func(t *testing.T) {
			rec := flight.New(flight.Options{SampleEvery: 1})
			var opts []Option
			switch variant {
			case "streaming":
				opts = []Option{WithStreaming(nil)}
			case "parallel":
				opts = []Option{WithWorkers(4)}
			}
			e, err := New(cfg, append([]Option{WithFlight(rec)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				e.Observe(r)
			}
			res := e.Finish()
			if len(res.Loops) == 0 {
				t.Fatal("no loops")
			}
			margin := cfg.MergeWindow + 2*cfg.MaxReplicaGap
			var merged *Loop
			for _, l := range res.Loops {
				if len(l.Streams) == 2 {
					merged = l
				}
			}
			if merged == nil {
				t.Fatal("no merged loop in fixture")
			}
			tr := rec.Seal("test", merged.Prefix, merged.Start, merged.End, margin)
			k := kindsOf(tr)
			if k[flight.KindStreamOpen] != 2 {
				t.Errorf("stream-open = %d, want 2:\n%+v", k[flight.KindStreamOpen], tr.Events)
			}
			if k[flight.KindReplica] == 0 {
				t.Error("no replica events")
			}
			if k[flight.KindValidated] != 2 {
				t.Errorf("validated = %d, want 2", k[flight.KindValidated])
			}
			if k[flight.KindMerge] != 1 {
				t.Errorf("merge = %d, want 1", k[flight.KindMerge])
			}
			if k[flight.KindLoopOpen] != 1 || k[flight.KindLoopFinal] != 1 {
				t.Errorf("loop-open = %d, loop-final = %d, want 1 each",
					k[flight.KindLoopOpen], k[flight.KindLoopFinal])
			}
			// The merge event carries the inter-stream gap.
			for _, ev := range tr.Events {
				if ev.Kind == flight.KindMerge && ev.Gap <= 0 {
					t.Errorf("merge event gap = %v, want > 0", ev.Gap)
				}
			}
		})
	}
}

// TestFlightRejectReasons checks the reason enum on the two step-2
// gates: the pair bar and subnet invalidation.
func TestFlightRejectReasons(t *testing.T) {
	cfg := DefaultConfig()
	var recs []trace.Record
	// A pair (2 replicas): below the evidence bar.
	pairPfx := "192.0.2.0/24"
	recs = append(recs, replicaRun(t, time.Second, 5*time.Millisecond,
		mkPkt("198.51.100.1", "192.0.2.33", 301, 64, 4), 2, 2)...)
	// A 5-replica stream refuted by a non-member packet towards the
	// same /24 inside its window.
	invPfx := "203.0.113.0/24"
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond,
		mkPkt("192.0.2.1", "203.0.113.5", 101, 62, 1), 5, 2)...)
	recs = append(recs, rec(t, 1020*time.Millisecond,
		mkPkt("10.0.0.1", "203.0.113.77", 999, 64, 9)))
	sortRecords(recs)

	fr := flight.New(flight.Options{SampleEvery: 1})
	d := NewDetector(cfg)
	d.SetFlight(fr.Shard(0))
	for _, r := range recs {
		d.Observe(r)
	}
	res := d.Finish()
	if len(res.Loops) != 0 {
		t.Fatalf("loops = %d, want 0", len(res.Loops))
	}

	reasons := func(prefix string) map[flight.Reason]int {
		m := make(map[flight.Reason]int)
		tr := fr.Seal(prefix, routing.MustParsePrefix(prefix), 0, 10*time.Second, 0)
		for _, ev := range tr.Events {
			if ev.Kind == flight.KindReject {
				m[ev.Reason]++
			}
		}
		return m
	}
	if r := reasons(pairPfx); r[flight.ReasonPairDiscarded] != 1 {
		t.Errorf("pair prefix rejects = %v, want one pair-discarded", r)
	}
	if r := reasons(invPfx); r[flight.ReasonSubnetInvalidated] != 1 {
		t.Errorf("invalidated prefix rejects = %v, want one subnet-invalidated", r)
	}
}
