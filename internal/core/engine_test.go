package core

import (
	"errors"
	"testing"
	"time"

	"loopscope/internal/trace"
)

// TestNewRejectsInvalidConfigs: every constructor-visible violation
// must surface as a *ConfigError naming the offending field.
func TestNewRejectsInvalidConfigs(t *testing.T) {
	ok := DefaultConfig()
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"min-replicas", func(c *Config) { c.MinReplicas = 1 }, "MinReplicas"},
		{"member-low", func(c *Config) { c.MemberReplicas = 1 }, "MemberReplicas"},
		{"member-high", func(c *Config) { c.MemberReplicas = c.MinReplicas + 1 }, "MemberReplicas"},
		{"ttl-delta", func(c *Config) { c.MinTTLDelta = 0 }, "MinTTLDelta"},
		{"prefix-negative", func(c *Config) { c.PrefixBits = -1 }, "PrefixBits"},
		{"prefix-wide", func(c *Config) { c.PrefixBits = 33 }, "PrefixBits"},
		{"replica-gap", func(c *Config) { c.MaxReplicaGap = 0 }, "MaxReplicaGap"},
		{"merge-window", func(c *Config) { c.MergeWindow = -time.Second }, "MergeWindow"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := ok
			c.mut(&cfg)
			_, err := New(cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Field != c.field {
				t.Errorf("Field = %q, want %q", ce.Field, c.field)
			}
		})
	}
}

// TestNewRejectsOptionConflicts: incompatible option combinations are
// construction errors, not silent precedence.
func TestNewRejectsOptionConflicts(t *testing.T) {
	cfg := DefaultConfig()
	for name, opts := range map[string][]Option{
		"negative-workers":  {WithWorkers(-2)},
		"streaming+naive":   {WithStreaming(nil), WithNaive()},
		"workers+streaming": {WithWorkers(4), WithStreaming(nil)},
		"workers+naive":     {WithWorkers(4), WithNaive()},
	} {
		if _, err := New(cfg, opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestNewDispatch: the options select the documented engine variants.
func TestNewDispatch(t *testing.T) {
	cfg := DefaultConfig()
	mustNew := func(opts ...Option) Engine {
		t.Helper()
		e, err := New(cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if _, ok := mustNew(WithWorkers(1)).(*Detector); !ok {
		t.Error("WithWorkers(1) did not select the sequential Detector")
	}
	p, ok := mustNew(WithWorkers(3)).(*ParallelDetector)
	if !ok || p.Workers() != 3 {
		t.Errorf("WithWorkers(3) = %T with %d workers", p, p.Workers())
	}
	p.Finish() // release the worker goroutines
	if _, ok := mustNew(WithNaive()).(*NaiveDetector); !ok {
		t.Error("WithNaive did not select the NaiveDetector")
	}
	if _, ok := mustNew(WithStreaming(nil)).(*StreamDetector); !ok {
		t.Error("WithStreaming did not select the StreamDetector")
	}
	if e := mustNew(); e == nil {
		t.Error("default construction failed")
	} else if _, isPar := e.(*ParallelDetector); isPar {
		e.Finish()
	}
}

// TestEngineVariantsAgree: every Engine built by New, driven through
// the same Run pipeline, reports the same loops on the same trace.
func TestEngineVariantsAgree(t *testing.T) {
	cfg := DefaultConfig()
	recs := randomTrace(11, 8*time.Second, 700, 3)
	want := DetectRecords(recs, cfg)

	variants := map[string][]Option{
		"sequential": {WithWorkers(1)},
		"parallel-4": {WithWorkers(4)},
		"naive":      {WithNaive()},
		"streaming":  {WithStreaming(nil)},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			e, err := New(cfg, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(e, trace.NewSliceSource(trace.Meta{Link: "mem"}, recs))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Loops) != len(want.Loops) {
				t.Fatalf("%d loops, want %d", len(res.Loops), len(want.Loops))
			}
			for i := range res.Loops {
				g, w := res.Loops[i], want.Loops[i]
				if g.Prefix != w.Prefix || g.Start != w.Start || g.End != w.End {
					t.Errorf("loop %d: got %v %v..%v, want %v %v..%v",
						i, g.Prefix, g.Start, g.End, w.Prefix, w.Start, w.End)
				}
			}
			if res.TotalPackets != want.TotalPackets || res.LoopedPackets != want.LoopedPackets {
				t.Errorf("counters: got %d/%d, want %d/%d",
					res.TotalPackets, res.LoopedPackets, want.TotalPackets, want.LoopedPackets)
			}
		})
	}
}

// TestStreamingEngineEmitsWhileRunning: the WithStreaming emit hook
// still fires through the Engine interface, and the Finish Result
// agrees with what was emitted.
func TestStreamingEngineEmitsWhileRunning(t *testing.T) {
	cfg := DefaultConfig()
	recs := randomTrace(11, 8*time.Second, 700, 3)
	var emitted []*Loop
	e, err := New(cfg, WithStreaming(func(l *Loop) { emitted = append(emitted, l) }))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(e, trace.NewSliceSource(trace.Meta{Link: "mem"}, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(res.Loops) {
		t.Fatalf("emitted %d loops, Finish reported %d", len(emitted), len(res.Loops))
	}
	if len(emitted) == 0 {
		t.Fatal("no loops emitted; test is vacuous")
	}
}

// TestBatcher: the batch stage hands back every record exactly once,
// in order, and surfaces the source error alongside the final batch.
func TestBatcher(t *testing.T) {
	recs := randomTrace(5, 2*time.Second, 300, 1)
	b := trace.NewBatcher(trace.NewSliceSource(trace.Meta{Link: "mem"}, recs), 10)
	var got []trace.Record
	for {
		batch, err := b.Next()
		got = append(got, batch...)
		if err != nil {
			break
		}
		if len(batch) != 10 {
			t.Fatalf("non-final batch of %d records", len(batch))
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("batched %d of %d records", len(got), len(recs))
	}
	for i := range got {
		if got[i].Time != recs[i].Time {
			t.Fatalf("record %d out of order", i)
		}
	}
	if _, err := b.Next(); err == nil {
		t.Error("drained batcher returned nil error")
	}
}
