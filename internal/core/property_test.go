package core

import (
	"testing"
	"testing/quick"
	"time"

	"loopscope/internal/routing"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
	"loopscope/internal/traffic"
)

// randomTrace synthesizes a trace with a random background workload
// and a random set of scripted loops, returning the trace.
func randomTrace(seed uint64, dur time.Duration, pps float64, nLoops int) []trace.Record {
	rng := stats.NewRNG(seed)
	dests := []routing.Prefix{
		routing.MustParsePrefix("198.51.100.0/24"),
		routing.MustParsePrefix("198.51.101.0/24"),
		routing.MustParsePrefix("203.0.113.0/24"),
		routing.MustParsePrefix("192.168.7.0/24"),
		routing.MustParsePrefix("192.0.2.0/24"),
	}
	cfg := traffic.SynthConfig{
		Duration:         dur,
		PacketsPerSecond: pps,
		Mix:              traffic.DefaultMix(),
		DestPrefixes:     dests,
		HopsMin:          3, HopsMax: 9,
	}
	for i := 0; i < nLoops; i++ {
		cfg.Loops = append(cfg.Loops, traffic.LoopSpec{
			Prefix:     dests[rng.Intn(len(dests))],
			Start:      time.Duration(rng.Int63n(int64(dur * 3 / 4))),
			Duration:   time.Duration(100+rng.Intn(3000)) * time.Millisecond,
			TTLDelta:   2 + rng.Intn(5),
			Revolution: time.Duration(1+rng.Intn(8)) * time.Millisecond,
		})
	}
	return traffic.Synthesize(cfg, rng)
}

// TestStreamInvariantsQuick: every validated stream must satisfy the
// paper's replica definition — strictly decreasing TTLs with deltas of
// at least MinTTLDelta, time-ordered replicas, at least MinReplicas of
// them, all towards one /24.
func TestStreamInvariantsQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		recs := randomTrace(seed, 10*time.Second, 800, 3)
		res := DetectRecords(recs, cfg)
		for _, s := range res.Streams {
			if s.Count() < cfg.MinReplicas {
				return false
			}
			for i := 1; i < len(s.Replicas); i++ {
				prev, cur := s.Replicas[i-1], s.Replicas[i]
				if cur.Time < prev.Time {
					return false
				}
				if int(prev.TTL)-int(cur.TTL) < cfg.MinTTLDelta {
					return false
				}
				if cur.Time-prev.Time > cfg.MaxReplicaGap {
					return false
				}
			}
			if s.Prefix.Bits != cfg.PrefixBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMembershipConsistencyQuick: the membership index and the stream
// list must agree exactly.
func TestMembershipConsistencyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		recs := randomTrace(seed, 8*time.Second, 600, 2)
		res := DetectRecords(recs, DefaultConfig())
		if len(res.Membership) != len(recs) {
			return false
		}
		fromStreams := make(map[int]int32)
		for _, s := range res.Streams {
			for _, r := range s.Replicas {
				fromStreams[r.Index] = int32(s.ID)
			}
		}
		for i, m := range res.Membership {
			want, ok := fromStreams[i]
			if ok != (m >= 0) {
				return false
			}
			if ok && want != m {
				return false
			}
		}
		return len(fromStreams) == res.LoopedPackets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLoopInvariantsQuick: merged loops must cover their streams, stay
// within one prefix, and same-prefix loops must be separated by at
// least the merge window OR a non-looped packet.
func TestLoopInvariantsQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		recs := randomTrace(seed, 12*time.Second, 700, 4)
		res := DetectRecords(recs, cfg)
		seen := make(map[int]bool)
		for _, l := range res.Loops {
			if len(l.Streams) == 0 {
				return false
			}
			for _, s := range l.Streams {
				if s.Prefix != l.Prefix {
					return false
				}
				if s.Start() < l.Start || s.End() > l.End {
					return false
				}
				if seen[s.ID] {
					return false // stream in two loops
				}
				seen[s.ID] = true
			}
		}
		// Every validated stream belongs to exactly one loop.
		return len(seen) == len(res.Streams)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialNaiveQuick: the hash-indexed detector and the naive
// quadratic reference must produce identical results on random
// traces.
func TestDifferentialNaiveQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		recs := randomTrace(seed, 6*time.Second, 500, 3)
		a := DetectRecords(recs, cfg)
		b := NaiveDetectRecords(recs, cfg)
		if len(a.Streams) != len(b.Streams) || len(a.Loops) != len(b.Loops) ||
			a.LoopedPackets != b.LoopedPackets ||
			a.PairsDiscarded != b.PairsDiscarded ||
			a.SubnetInvalidated != b.SubnetInvalidated {
			return false
		}
		for i := range a.Streams {
			sa, sb := a.Streams[i], b.Streams[i]
			if sa.Prefix != sb.Prefix || sa.Count() != sb.Count() ||
				sa.Start() != sb.Start() || sa.End() != sb.End() {
				return false
			}
		}
		for i := range a.Loops {
			la, lb := a.Loops[i], b.Loops[i]
			if la.Prefix != lb.Prefix || la.Start != lb.Start || la.End != lb.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDetectorDeterminism: two runs over the same trace must agree
// exactly (the sweep iterates a map, so this guards against order
// dependence).
func TestDetectorDeterminism(t *testing.T) {
	recs := randomTrace(1234, 15*time.Second, 1000, 5)
	a := DetectRecords(recs, DefaultConfig())
	b := DetectRecords(recs, DefaultConfig())
	if len(a.Streams) != len(b.Streams) || len(a.Loops) != len(b.Loops) {
		t.Fatalf("nondeterministic: %d/%d streams, %d/%d loops",
			len(a.Streams), len(b.Streams), len(a.Loops), len(b.Loops))
	}
	for i := range a.Streams {
		if a.Streams[i].Start() != b.Streams[i].Start() ||
			a.Streams[i].Count() != b.Streams[i].Count() {
			t.Fatalf("stream %d differs between runs", i)
		}
	}
}

// TestScriptedLoopsAreFound: with clearly separated scripted loops,
// the detector must find a loop for every script entry that had
// traffic.
func TestScriptedLoopsAreFound(t *testing.T) {
	dests := []routing.Prefix{
		routing.MustParsePrefix("198.51.100.0/24"),
		routing.MustParsePrefix("203.0.113.0/24"),
	}
	cfg := traffic.SynthConfig{
		Duration:         60 * time.Second,
		PacketsPerSecond: 1500,
		Mix:              traffic.DefaultMix(),
		DestPrefixes:     dests,
		HopsMin:          3, HopsMax: 8,
		Loops: []traffic.LoopSpec{
			{Prefix: dests[0], Start: 5 * time.Second, Duration: time.Second, TTLDelta: 2, Revolution: 3 * time.Millisecond},
			{Prefix: dests[0], Start: 40 * time.Second, Duration: time.Second, TTLDelta: 2, Revolution: 3 * time.Millisecond},
			{Prefix: dests[1], Start: 20 * time.Second, Duration: 2 * time.Second, TTLDelta: 4, Revolution: 6 * time.Millisecond},
		},
	}
	recs := traffic.Synthesize(cfg, stats.NewRNG(55))
	res := DetectRecords(recs, DefaultConfig())
	if len(res.Loops) != 3 {
		for _, l := range res.Loops {
			t.Logf("loop: %v %v..%v", l.Prefix, l.Start, l.End)
		}
		t.Fatalf("loops = %d, want 3", len(res.Loops))
	}
	// The delta-4 loop's streams must carry delta 4.
	for _, l := range res.Loops {
		if l.Prefix == dests[1] {
			for _, s := range l.Streams {
				if s.TTLDelta() != 4 {
					t.Errorf("stream delta = %d, want 4", s.TTLDelta())
				}
			}
		}
	}
}

// TestDetectSourceMatchesDetectRecords exercises the Source-based
// entry point.
func TestDetectSourceMatchesDetectRecords(t *testing.T) {
	recs := randomTrace(77, 5*time.Second, 400, 2)
	a := DetectRecords(recs, DefaultConfig())
	src := trace.NewSliceSource(trace.Meta{Link: "mem"}, recs)
	b, err := DetectSource(src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Streams) != len(b.Streams) || len(a.Loops) != len(b.Loops) {
		t.Errorf("source path differs: %d/%d streams", len(a.Streams), len(b.Streams))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MinReplicas: 1, MemberReplicas: 2, MinTTLDelta: 2, PrefixBits: 24},
		{MinReplicas: 3, MemberReplicas: 1, MinTTLDelta: 2, PrefixBits: 24},
		{MinReplicas: 3, MemberReplicas: 4, MinTTLDelta: 2, PrefixBits: 24},
		{MinReplicas: 3, MemberReplicas: 2, MinTTLDelta: 0, PrefixBits: 24},
		{MinReplicas: 3, MemberReplicas: 2, MinTTLDelta: 2, PrefixBits: 33},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			NewDetector(cfg)
		}()
	}
}

// TestObserveAllocationBudget locks in the hot-path allocation count:
// a non-matching record costs the masked copy, the builder and
// bookkeeping appends — if this regresses the multi-hour-trace use
// case quietly gets slower.
func TestObserveAllocationBudget(t *testing.T) {
	recs := randomTrace(99, 30*time.Second, 2000, 0)
	if len(recs) < 10000 {
		t.Fatal("trace too small")
	}
	d := NewDetector(DefaultConfig())
	i := 0
	avg := testing.AllocsPerRun(len(recs)-1, func() {
		d.Observe(recs[i])
		i++
	})
	// Currently ~6 allocs/record (masked copy, builder, replicas
	// slice, map/bucket growth amortised, index appends). Alarm well
	// above that.
	if avg > 12 {
		t.Errorf("Observe allocates %.1f objects/record; hot path regressed", avg)
	}
	t.Logf("Observe: %.2f allocs/record", avg)
}
