// Package core implements the paper's contribution: detection of
// routing loops from single-link packet traces (Hengartner, Moon,
// Mortier, Diot — IMC 2002, §IV).
//
// A packet caught in a forwarding loop that includes the monitored
// link crosses that link once per revolution, each time with its TTL
// lower by the number of routers in the loop. In the trace this shows
// up as a replica stream: a run of records whose captured bytes are
// identical except for the TTL and IP header checksum, with strictly
// decreasing TTL. The algorithm has three steps:
//
//  1. Detect replicas and assemble them into streams.
//  2. Validate streams: discard two-element sets (link-layer
//     duplicates) and require that, while a stream is active, every
//     packet towards the same /24 is itself part of a replica stream
//     — a real loop captures all traffic to the prefix.
//  3. Merge streams caused by the same routing loop: same /24 and
//     overlapping in time, or separated by less than the merge window
//     with no non-looped packet to the subnet in between.
package core

import (
	"time"

	"loopscope/internal/packet"
	"loopscope/internal/routing"
)

// Config tunes the detector. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	// MinReplicas is the smallest stream size reported as loop
	// evidence. The paper discards two-element sets as link-layer
	// duplicates, so the default is 3.
	MinReplicas int
	// MinTTLDelta is the smallest acceptable TTL decrement between
	// successive replicas. A loop involves at least two routers, so
	// the default is 2.
	MinTTLDelta int
	// MemberReplicas is the smallest stream size whose packets count
	// as "looped" for the step-2 validation of other streams. Two-
	// element sets are not loop evidence themselves but their packets
	// must not invalidate a concurrent genuine stream; default 2.
	MemberReplicas int
	// PrefixBits is the aggregation width for validation and merging;
	// /24 is the longest prefix tier-1 ISPs honoured at the time.
	PrefixBits int
	// MaxReplicaGap bounds the spacing between successive replicas of
	// one stream; a stream with no new replica for this long is
	// closed.
	MaxReplicaGap time.Duration
	// MergeWindow is the step-3 gap within which two same-prefix
	// streams are attributed to one routing loop (the paper uses one
	// minute and reports 2 and 5 to be equivalent).
	MergeWindow time.Duration
	// ValidateSubnet enables the step-2 subnet condition. Disabling
	// it is used by the ablation benchmarks.
	ValidateSubnet bool
	// MaxActiveStreams caps the number of live stream builders the
	// StreamDetector holds (0: unlimited). The cap is the detector's
	// overload self-protection: an IPID-collision storm — every packet
	// distinct, none ever growing a replica stream — would otherwise
	// inflate builder state without bound. At the cap the detector
	// sheds lowest-value state first (cold single-replica builders,
	// which cannot be loop evidence yet) and degrades to sampled
	// admission of new streams, counting everything it gave up (see
	// StreamDetector.Shed). Batch detectors ignore the field: they
	// already hold the whole trace.
	MaxActiveStreams int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		MinReplicas:    3,
		MinTTLDelta:    2,
		MemberReplicas: 2,
		PrefixBits:     24,
		MaxReplicaGap:  2 * time.Second,
		MergeWindow:    time.Minute,
		ValidateSubnet: true,
	}
}

// Replica is one observation of a looping packet crossing the link.
type Replica struct {
	// Time is the capture timestamp.
	Time time.Duration
	// TTL is the observed TTL.
	TTL uint8
	// Index is the record's position in the trace.
	Index int
}

// ReplicaStream is the set of replicas of one original packet.
type ReplicaStream struct {
	// ID numbers validated streams in order of first replica.
	ID int
	// Prefix is the destination /PrefixBits subnet.
	Prefix routing.Prefix
	// Replicas holds the observations in capture order.
	Replicas []Replica
	// Summary is the parsed view of the first replica.
	Summary PacketSummary
}

// PacketSummary carries the header fields the analysis cares about,
// extracted from the first replica.
type PacketSummary struct {
	Src, Dst packet.Addr
	// ID is the IP identification field — with Src it identifies the
	// original packet, which is what lets two vantage points match
	// observations of the same stream.
	ID        uint16
	Protocol  uint8
	SrcPort   uint16
	DstPort   uint16
	TCPFlags  uint8
	ICMPType  uint8
	WireLen   int
	ClassMask uint16
}

// Count returns the number of replicas.
func (s *ReplicaStream) Count() int { return len(s.Replicas) }

// Start returns the time of the first replica.
func (s *ReplicaStream) Start() time.Duration { return s.Replicas[0].Time }

// End returns the time of the last replica.
func (s *ReplicaStream) End() time.Duration {
	return s.Replicas[len(s.Replicas)-1].Time
}

// Duration returns End - Start.
func (s *ReplicaStream) Duration() time.Duration { return s.End() - s.Start() }

// TTLDelta returns the dominant (most common) TTL decrement between
// successive replicas.
func (s *ReplicaStream) TTLDelta() int {
	counts := make(map[int]int)
	for i := 1; i < len(s.Replicas); i++ {
		d := int(s.Replicas[i-1].TTL) - int(s.Replicas[i].TTL)
		counts[d]++
	}
	best, bestN := 0, 0
	for d, n := range counts {
		if n > bestN || (n == bestN && d < best) {
			best, bestN = d, n
		}
	}
	return best
}

// MeanSpacing returns the average inter-replica spacing, the paper's
// per-stream spacing statistic (Figure 4). Streams of one replica
// return 0.
func (s *ReplicaStream) MeanSpacing() time.Duration {
	if len(s.Replicas) < 2 {
		return 0
	}
	return s.Duration() / time.Duration(len(s.Replicas)-1)
}

// LastTTL returns the TTL of the final replica.
func (s *ReplicaStream) LastTTL() uint8 {
	return s.Replicas[len(s.Replicas)-1].TTL
}

// Escaped estimates whether the packet left the loop alive: the last
// observed TTL is still larger than one revolution, so the packet
// cannot have expired inside the loop right after this link. (With
// router update logs one could do better; from a single link this is
// the paper's available signal.)
func (s *ReplicaStream) Escaped() bool {
	return int(s.LastTTL()) > s.TTLDelta() && s.TTLDelta() > 0
}

// LoopDelay estimates the extra delay the loop imposed on this packet
// while it was observable from the link: the span between first and
// last replica.
func (s *ReplicaStream) LoopDelay() time.Duration { return s.Duration() }

// Loop is a detected routing loop: one or more merged replica streams
// towards the same subnet.
type Loop struct {
	Prefix     routing.Prefix
	Streams    []*ReplicaStream
	Start, End time.Duration
}

// Duration returns the loop's observable lifetime.
func (l *Loop) Duration() time.Duration { return l.End - l.Start }

// Replicas returns the total number of replica observations across
// the loop's streams.
func (l *Loop) Replicas() int {
	n := 0
	for _, s := range l.Streams {
		n += len(s.Replicas)
	}
	return n
}

// EscapeDelays returns the loop delay of each escaped stream (the
// paper's escape-delay distribution, Figure 9): how long the loop
// held each packet that plausibly left it alive. Streams whose packet
// expired inside the loop contribute nothing.
func (l *Loop) EscapeDelays() []time.Duration {
	var out []time.Duration
	for _, s := range l.Streams {
		if s.Escaped() {
			out = append(out, s.LoopDelay())
		}
	}
	return out
}

// Result is the detector's output for one trace.
type Result struct {
	// Streams are the validated replica streams, ordered by first
	// replica.
	Streams []*ReplicaStream
	// Loops are the merged routing loops, ordered by start.
	Loops []*Loop

	// TotalPackets is the number of trace records processed.
	TotalPackets int
	// LoopedPackets is the number of records that belong to a
	// validated stream (the paper's "looped packets" in Table I).
	LoopedPackets int
	// ParseErrors counts undecodable records.
	ParseErrors int
	// PairsDiscarded counts two-element replica sets discarded as
	// link-layer duplicates (step 2, first condition).
	PairsDiscarded int
	// SubnetInvalidated counts streams discarded because a
	// same-subnet packet was not looping during the stream (step 2,
	// second condition).
	SubnetInvalidated int
	// Membership maps record index -> validated stream ID, or -1 for
	// records outside every validated stream. Its length is
	// TotalPackets.
	Membership []int32
}
