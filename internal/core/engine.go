package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"

	"loopscope/internal/obs"
	"loopscope/internal/obs/flight"
	"loopscope/internal/trace"
)

// Engine is the unified detection interface: every detector variant —
// the batch Detector, the NaiveDetector reference, the bounded-memory
// StreamDetector and the multi-core ParallelDetector — consumes trace
// records in capture order through Observe and delivers the analysis
// through Finish. Callers construct an Engine with New and stop
// switching on concrete types.
//
// Records must arrive in non-decreasing time order. Finish must be
// called exactly once, after the last Observe; the Engine must not be
// reused afterwards.
type Engine interface {
	Observe(trace.Record)
	Finish() *Result
}

// BatchObserver is implemented by engines that ingest records more
// efficiently in slices (the ParallelDetector hands whole batches to
// its shard channels). Run feeds batches through this interface when
// the engine provides it.
type BatchObserver interface {
	ObserveBatch([]trace.Record)
}

// ErrFinisher is implemented by engines whose Finish can fail without
// the failure being the caller's fault — the ParallelDetector, whose
// worker shards recover panics and surface them as a wrapped
// ErrWorkerPanic. Run finishes through this interface when the engine
// provides it; on engines without it Finish cannot fail.
type ErrFinisher interface {
	FinishErr() (*Result, error)
}

// ConfigError is the single error type every invalid Config produces,
// whichever constructor rejects it.
type ConfigError struct {
	// Field names the offending Config field.
	Field string
	// Reason states the violated constraint.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid config: %s %s", e.Field, e.Reason)
}

// Validate checks the configuration against the constraints every
// detector variant shares. It returns a *ConfigError describing the
// first violation, or nil.
func (cfg Config) Validate() error {
	switch {
	case cfg.MinReplicas < 2:
		return &ConfigError{Field: "MinReplicas", Reason: "must be at least 2"}
	case cfg.MemberReplicas < 2 || cfg.MemberReplicas > cfg.MinReplicas:
		return &ConfigError{Field: "MemberReplicas", Reason: "must be in [2, MinReplicas]"}
	case cfg.MinTTLDelta < 1:
		return &ConfigError{Field: "MinTTLDelta", Reason: "must be at least 1"}
	case cfg.PrefixBits < 0 || cfg.PrefixBits > 32:
		return &ConfigError{Field: "PrefixBits", Reason: "must be in [0, 32]"}
	case cfg.MaxReplicaGap <= 0:
		return &ConfigError{Field: "MaxReplicaGap", Reason: "must be positive"}
	case cfg.MergeWindow < 0:
		return &ConfigError{Field: "MergeWindow", Reason: "must not be negative"}
	case cfg.MaxActiveStreams < 0:
		return &ConfigError{Field: "MaxActiveStreams", Reason: "must not be negative"}
	}
	return nil
}

// options collects the functional-option state New folds up.
type options struct {
	workers   int
	streaming bool
	emit      func(*Loop)
	naive     bool
	metrics   *obs.Registry
	flight    *flight.Recorder
}

// Option configures New.
type Option func(*options)

// WithWorkers selects the multi-core ParallelDetector with n worker
// shards. n == 0 means runtime.GOMAXPROCS(0); n == 1 degenerates to
// the sequential Detector (identical output, no pipeline overhead).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithStreaming selects the bounded-memory StreamDetector; emit (may
// be nil) receives every loop as soon as it can no longer change.
func WithStreaming(emit func(*Loop)) Option {
	return func(o *options) {
		o.streaming = true
		o.emit = emit
	}
}

// WithNaive selects the quadratic reference implementation (for
// differential testing and the data-structure ablation).
func WithNaive() Option {
	return func(o *options) { o.naive = true }
}

// WithMetrics instruments the engine against a metrics registry: the
// engine records its worker count, and the ParallelDetector
// additionally its per-shard record counters, queue-depth gauges,
// backpressure counters and reduce-stage span. A nil registry is the
// uninstrumented default and costs nothing on the hot path.
func WithMetrics(r *obs.Registry) Option {
	return func(o *options) { o.metrics = r }
}

// WithFlight attaches a flight recorder: the engine records stream,
// candidate and loop lifecycle events into it, keyed by destination
// prefix, so a finalized loop's decision trail can be sealed and
// explained afterwards. A nil recorder is the uninstrumented default
// and costs one predictable branch per replica on the hot path.
// Recording never changes detection results. The NaiveDetector
// reference does not record.
func WithFlight(rec *flight.Recorder) Option {
	return func(o *options) { o.flight = rec }
}

// New constructs a detection engine. With no options it returns the
// sequential batch Detector; WithWorkers, WithStreaming and WithNaive
// select the other variants. The configuration is validated uniformly
// (every violation surfaces as a *ConfigError); incompatible option
// combinations are rejected.
func New(cfg Config, opts ...Option) (Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("core: WithWorkers(%d): worker count must not be negative", o.workers)
	}
	if o.streaming && o.naive {
		return nil, errors.New("core: WithStreaming and WithNaive are mutually exclusive")
	}
	if o.workers > 1 && (o.streaming || o.naive) {
		return nil, errors.New("core: WithWorkers(>1) cannot be combined with WithStreaming or WithNaive")
	}
	e, workers, err := build(cfg, &o)
	if err != nil {
		return nil, err
	}
	if o.metrics != nil {
		o.metrics.Counter(obs.MetricEngineBuilds).Inc()
		o.metrics.Gauge(obs.MetricEngineWorkers).Set(int64(workers))
		if pd, ok := e.(*ParallelDetector); ok {
			pd.Instrument(o.metrics)
		}
	}
	if o.flight != nil {
		switch det := e.(type) {
		case *ParallelDetector:
			det.SetFlightRecorder(o.flight)
		case *Detector:
			det.SetFlight(o.flight.Shard(0))
		case *StreamDetector:
			det.SetFlight(o.flight.Shard(0))
		}
	}
	return e, nil
}

// build selects the detector variant; it reports the worker count the
// choice implies (1 for the sequential variants) for the engine gauge.
func build(cfg Config, o *options) (Engine, int, error) {
	switch {
	case o.streaming:
		return NewStreamDetector(cfg, o.emit), 1, nil
	case o.naive:
		return NewNaiveDetector(cfg), 1, nil
	case o.workers == 1:
		return NewDetector(cfg), 1, nil
	case o.workers != 0:
		return NewParallelDetector(cfg, o.workers), o.workers, nil
	}
	// Default: use every core the runtime gives us; a single-core
	// box gets the sequential detector rather than a one-shard
	// pipeline.
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return NewParallelDetector(cfg, n), n, nil
	}
	return NewDetector(cfg), 1, nil
}

// Run drives an Engine over a Source, reading records in batches (the
// pipeline's decode/batch stage) and handing them to the engine —
// whole slices at a time when it implements BatchObserver. It returns
// the engine's Result after the source is drained; an engine that
// implements ErrFinisher (the ParallelDetector, after a worker panic)
// can also fail at finish time.
func Run(e Engine, src trace.Source) (*Result, error) {
	return RunMetered(e, src, nil)
}

// RunMetered is Run with pipeline instrumentation: the batcher counts
// hand-offs into r and the ingest and finish stages are timed as
// spans. A nil registry makes it exactly Run.
func RunMetered(e Engine, src trace.Source, r *obs.Registry) (*Result, error) {
	b := trace.NewBatcher(src, trace.DefaultBatchSize)
	b.Instrument(r)
	bo, batched := e.(BatchObserver)
	ingest := r.StartSpan("ingest")
	for {
		recs, err := b.Next()
		if len(recs) > 0 {
			if batched {
				bo.ObserveBatch(recs)
			} else {
				for _, rec := range recs {
					e.Observe(rec)
				}
			}
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// Release engine resources before reporting: the parallel
			// detector's workers block on their shard channels until
			// finished, so abandoning the engine here would leak them.
			ingest.End()
			if ef, ok := e.(ErrFinisher); ok {
				ef.FinishErr()
			} else {
				e.Finish()
			}
			return nil, err
		}
	}
	ingest.End()
	fin := r.StartSpan("finish")
	defer fin.End()
	if ef, ok := e.(ErrFinisher); ok {
		return ef.FinishErr()
	}
	return e.Finish(), nil
}
