package core

import (
	"time"

	"loopscope/internal/obs/flight"
	"loopscope/internal/trace"
)

// SessionEvent is one loop emission from a Session.
type SessionEvent struct {
	// Loop is the finalized (or, under Drain, partially observed)
	// routing loop.
	Loop *Loop
	// Seq numbers final emissions from 0 in emission order; replayed
	// (suppressed) emissions consume sequence numbers, so Seq is
	// stable across a checkpoint/resume cycle. Truncated emissions
	// carry Seq -1: they are not part of the final sequence.
	Seq int
	// Truncated marks loops flushed by Drain before the stream reached
	// the point where they could no longer change: the loop is real
	// evidence but its extent may be incomplete, and a resumed run
	// will re-emit the completed version as a final event.
	Truncated bool
}

// Session is the resumable, drainable streaming handle the serve
// daemon runs a live source through. It wraps the bounded-memory
// StreamDetector with the three things continuous operation needs and
// a one-shot batch run does not:
//
//   - Position accounting: Records and HighWater report how far into
//     the stream the detector has advanced, which is what a checkpoint
//     stores.
//   - Replay suppression: the StreamDetector is deterministic over a
//     record sequence, so a restarted process rebuilds detector state
//     by re-feeding the already-processed prefix of the stream.
//     SetReplay(n) swallows the first n final emissions during that
//     rebuild — they were already delivered before the restart — so
//     downstream sinks see each final loop exactly once.
//   - Drain: graceful shutdown flushes the detector mid-stream. Loops
//     forced out by the flush are emitted marked Truncated (their
//     extent could still have grown) and do not advance the final
//     sequence, so a later resume re-emits their completed form.
//
// A Session is not safe for concurrent use; the serve daemon gives
// each source its own.
type Session struct {
	sd   *StreamDetector
	emit func(SessionEvent)

	suppress  int
	finals    int
	records   int64
	highWater time.Duration
	draining  bool
	drained   bool
}

// NewSession returns a Session over a fresh StreamDetector. Every
// emission — suppressed replays excepted — reaches emit synchronously
// from inside Observe or Drain.
func NewSession(cfg Config, emit func(SessionEvent)) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		emit = func(SessionEvent) {}
	}
	s := &Session{emit: emit}
	s.sd = NewStreamDetector(cfg, s.onLoop)
	return s, nil
}

// onLoop routes StreamDetector emissions through the replay/drain
// bookkeeping.
func (s *Session) onLoop(l *Loop) {
	if s.draining {
		s.emit(SessionEvent{Loop: l, Seq: -1, Truncated: true})
		return
	}
	seq := s.finals
	s.finals++
	if s.suppress > 0 {
		s.suppress--
		return
	}
	s.emit(SessionEvent{Loop: l, Seq: seq})
}

// SetFlight attaches a flight-recorder shard to the underlying
// detector. Call before the first Observe; nil keeps recording
// disabled.
func (s *Session) SetFlight(sr *flight.ShardRecorder) { s.sd.SetFlight(sr) }

// SetReplay arms suppression of the next n final emissions. Call it
// once, before the first Observe, with the emitted count a checkpoint
// recorded; feeding the checkpointed record prefix then rebuilds
// detector state silently.
func (s *Session) SetReplay(n int) {
	if n > 0 {
		s.suppress = n
	}
}

// Replaying reports whether suppressed emissions are still pending —
// true until the replayed prefix has caught up with every loop the
// previous incarnation delivered.
func (s *Session) Replaying() bool { return s.suppress > 0 }

// ClearReplay cancels any remaining replay suppression and returns how
// many suppressed emissions were still pending. Callers use it when a
// replay ends without reaching its target: leftover suppression would
// silently swallow that many genuinely new emissions (permanent loss),
// whereas clearing it can at worst re-deliver events a downstream
// ID-dedup absorbs.
func (s *Session) ClearReplay() int {
	n := s.suppress
	s.suppress = 0
	return n
}

// Observe feeds the next record; records must arrive in non-decreasing
// time order. Observe must not be called after Drain.
func (s *Session) Observe(rec trace.Record) {
	if s.drained {
		panic("core: Session.Observe after Drain")
	}
	s.records++
	if rec.Time > s.highWater {
		s.highWater = rec.Time
	}
	s.sd.Observe(rec)
}

// Records returns the number of records observed.
func (s *Session) Records() int64 { return s.records }

// HighWater returns the largest record timestamp observed — the
// detector's position on the trace clock.
func (s *Session) HighWater() time.Duration { return s.highWater }

// Shed returns the detector's running shed counters — what the memory
// governor (Config.MaxActiveStreams) has given up so far. The serve
// daemon diffs successive snapshots into loopscope_shed_total.
func (s *Session) Shed() ShedCounts { return s.sd.Shed() }

// Emitted returns the number of final loop emissions so far, counting
// suppressed replays: it is the value a checkpoint stores and a
// restart passes to SetReplay.
func (s *Session) Emitted() int { return s.finals }

// Drain flushes all remaining detector state. Loops forced out are
// emitted with Truncated set and do not count toward Emitted. The
// session is dead afterwards; it returns the run's statistics.
func (s *Session) Drain() StreamStats {
	if s.drained {
		return StreamStats{}
	}
	s.draining = true
	s.drained = true
	return s.sd.FinishStats()
}

// Complete finishes the stream normally: the source reported a genuine
// end (a feed connection closed after its writer finished), so the
// flushed loops are complete evidence and are emitted as finals,
// continuing the sequence. The session is dead afterwards.
func (s *Session) Complete() StreamStats {
	if s.drained {
		return StreamStats{}
	}
	s.drained = true
	return s.sd.FinishStats()
}
