package core

import (
	"sort"
	"time"

	"loopscope/internal/trace"
)

// ExtractLoopRecords returns the trace records that constitute a
// detected loop's evidence: every replica of every stream, plus —
// when context is positive — all records towards the loop's prefix
// within context of the loop window. The result is a small, self-
// contained trace an operator can hand to the neighboring network's
// NOC (the paper notes persistent loops "require cooperation of many
// network operation groups to be analyzed"; this is the artifact that
// cooperation runs on).
//
// recs must be the records the detector consumed, in the same order.
func ExtractLoopRecords(recs []trace.Record, l *Loop, context time.Duration) []trace.Record {
	take := make(map[int]bool)
	for _, s := range l.Streams {
		for _, r := range s.Replicas {
			take[r.Index] = true
		}
	}
	out := make([]trace.Record, 0, len(take))
	for idx := range take {
		if idx >= 0 && idx < len(recs) {
			out = append(out, recs[idx])
		}
	}
	if context > 0 {
		lo, hi := l.Start-context, l.End+context
		// Records are time-ordered; find the window once.
		i := sort.Search(len(recs), func(i int) bool { return recs[i].Time >= lo })
		for ; i < len(recs) && recs[i].Time <= hi; i++ {
			if take[i] {
				continue
			}
			if pkt, err := decodeDst(recs[i].Data); err == nil && l.Prefix.Contains(pkt) {
				out = append(out, recs[i])
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
