package core

import (
	"encoding/binary"
	"sort"
	"sync"

	"loopscope/internal/trace"
)

// ParallelDetector is the multi-core detection engine. It runs the
// same three-step algorithm as the sequential Detector but fans the
// trace out to N worker shards keyed by the destination /PrefixBits
// prefix, so the whole hot path — header decode, replica matching,
// stream building, subnet validation, loop merging — runs
// concurrently.
//
// Why sharding by destination prefix is exact, not approximate:
//
//   - replica-stream building matches records on byte-equal masked
//     snapshots; the mask leaves the destination address intact, so
//     all observations of one looping packet carry the same
//     destination and land in the same shard;
//   - step-2 subnet validation and step-3 merging read only records
//     towards one /PrefixBits prefix, and a prefix is owned by
//     exactly one shard.
//
// Distinct prefixes therefore never interact until the final reduce,
// which only renumbers and re-sorts: per-shard results are remapped
// to global record indices, streams are ordered by the canonical
// (first-replica time, first-replica index) key and renumbered, loops
// are ordered by (start, prefix) — the same total orders the
// sequential Finish uses. The Result is identical in loop content to
// the sequential Detector's regardless of worker count or goroutine
// scheduling.
//
// Ingest is a pipeline: the caller's Observe/ObserveBatch calls are
// the decode/batch stage (they only read the destination bytes),
// records travel to shards in slices of DefaultBatchSize over bounded
// channels (backpressure, not unbounded queueing), and each shard
// feeds its own sequential Detector.
type ParallelDetector struct {
	cfg     Config
	workers int

	// pending accumulates the next outgoing batch per shard.
	pending []shardBatch
	shards  []*shardState
	wg      sync.WaitGroup

	n          int // records observed (global indices)
	shortShard int // round-robin shard for undecodable snapshots
}

// parallelBatchChannelDepth bounds the per-shard channel: with
// DefaultBatchSize-record batches this caps in-flight memory at
// workers × (depth+2) × DefaultBatchSize records.
const parallelBatchChannelDepth = 4

// shardBatch is one hand-off unit: records plus their global indices.
type shardBatch struct {
	recs []trace.Record
	idxs []int32
}

// shardState is one worker: a channel of batches, the shard's own
// sequential Detector, and the local-to-global index mapping.
type shardState struct {
	ch  chan shardBatch
	det *Detector
	// globals[i] is the global index of the shard's i-th record.
	globals []int32
	res     *Result
}

// NewParallelDetector returns a parallel engine with the given number
// of worker shards (at least 1). Like NewDetector it panics on an
// invalid configuration; use New for an error-returning constructor.
func NewParallelDetector(cfg Config, workers int) *ParallelDetector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if workers < 1 {
		workers = 1
	}
	p := &ParallelDetector{
		cfg:     cfg,
		workers: workers,
		pending: make([]shardBatch, workers),
		shards:  make([]*shardState, workers),
	}
	for i := range p.shards {
		s := &shardState{
			ch:  make(chan shardBatch, parallelBatchChannelDepth),
			det: NewDetector(cfg),
		}
		p.shards[i] = s
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for b := range s.ch {
				s.globals = append(s.globals, b.idxs...)
				for _, r := range b.recs {
					s.det.Observe(r)
				}
			}
			s.res = s.det.Finish()
		}()
	}
	return p
}

// shardOf routes a record by the masked destination address. The
// snapshot's destination lives at bytes 16..19 of the IPv4 header
// (fixed offset, independent of IHL), which is exactly the address
// packet.Decode reports — so a record that decodes lands in the shard
// that owns its prefix. Records too short to carry a destination
// cannot decode anyway (the shard's Detector counts the parse error);
// they are spread round-robin so a corrupt region cannot overload one
// shard.
func (p *ParallelDetector) shardOf(data []byte) int {
	if len(data) < 20 {
		p.shortShard++
		return p.shortShard % p.workers
	}
	dst := binary.BigEndian.Uint32(data[16:20])
	bits := p.cfg.PrefixBits
	var mask uint32
	if bits > 0 {
		mask = ^uint32(0) << (32 - bits)
	}
	// Fibonacci multiplicative mix: consecutive /24s must not stripe
	// into the same shard.
	h := (dst & mask) * 0x9e3779b1
	return int((uint64(h) * uint64(p.workers)) >> 32)
}

// Observe routes the next record to its shard, batching hand-offs.
// Records must arrive in non-decreasing time order.
func (p *ParallelDetector) Observe(rec trace.Record) {
	s := p.shardOf(rec.Data)
	b := &p.pending[s]
	if b.recs == nil {
		b.recs = make([]trace.Record, 0, trace.DefaultBatchSize)
		b.idxs = make([]int32, 0, trace.DefaultBatchSize)
	}
	b.recs = append(b.recs, rec)
	b.idxs = append(b.idxs, int32(p.n))
	p.n++
	if len(b.recs) >= trace.DefaultBatchSize {
		p.flushShard(s)
	}
}

// ObserveBatch routes a whole slice of records (BatchObserver).
func (p *ParallelDetector) ObserveBatch(recs []trace.Record) {
	for _, r := range recs {
		p.Observe(r)
	}
}

// flushShard sends the pending batch to the shard's worker. The send
// blocks when the shard is parallelBatchChannelDepth batches behind —
// the pipeline's backpressure.
func (p *ParallelDetector) flushShard(s int) {
	b := p.pending[s]
	if len(b.recs) == 0 {
		return
	}
	p.pending[s] = shardBatch{}
	p.shards[s].ch <- b
}

// Finish drains the pipeline and reduces the per-shard results into
// one Result identical to the sequential Detector's.
func (p *ParallelDetector) Finish() *Result {
	for s := range p.shards {
		p.flushShard(s)
		close(p.shards[s].ch)
	}
	p.wg.Wait()

	res := &Result{
		TotalPackets: p.n,
		Membership:   make([]int32, p.n),
	}
	for i := range res.Membership {
		res.Membership[i] = -1
	}

	// Remap every shard-local record index to its global index, then
	// collect streams and loops.
	var streams []*ReplicaStream
	var loops []*Loop
	for _, s := range p.shards {
		sr := s.res
		res.ParseErrors += sr.ParseErrors
		res.LoopedPackets += sr.LoopedPackets
		res.PairsDiscarded += sr.PairsDiscarded
		res.SubnetInvalidated += sr.SubnetInvalidated
		for _, st := range sr.Streams {
			for i := range st.Replicas {
				st.Replicas[i].Index = int(s.globals[st.Replicas[i].Index])
			}
		}
		streams = append(streams, sr.Streams...)
		loops = append(loops, sr.Loops...)
	}

	// Renumber streams in the canonical global order (the same key the
	// sequential Finish sorts by).
	sort.Slice(streams, func(i, j int) bool {
		a, b := streams[i].Replicas[0], streams[j].Replicas[0]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Index < b.Index
	})
	for id, st := range streams {
		st.ID = id
		for _, r := range st.Replicas {
			res.Membership[r.Index] = int32(id)
		}
	}
	res.Streams = streams

	// Loops were merged per prefix inside their shard; the global
	// order is the same (start, prefix) key the sequential merge uses.
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Start != loops[j].Start {
			return loops[i].Start < loops[j].Start
		}
		return loops[i].Prefix.Addr.Uint32() < loops[j].Prefix.Addr.Uint32()
	})
	res.Loops = loops
	return res
}

// Workers returns the number of worker shards.
func (p *ParallelDetector) Workers() int { return p.workers }
