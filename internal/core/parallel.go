package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"loopscope/internal/obs"
	"loopscope/internal/obs/flight"
	"loopscope/internal/trace"
)

// ErrWorkerPanic is the sentinel wrapped into the error a
// ParallelDetector surfaces when one of its worker shards panics. The
// panic is recovered inside the worker, the peer shards are cancelled
// (they drain their queues without further processing), and FinishErr
// reports the first panic with its shard number, value and stack.
var ErrWorkerPanic = errors.New("core: worker shard panicked")

// shardConsumeHook, when non-nil, is called with each batch a shard
// worker is about to process. Tests use it to inject a panicking
// record stream into a live worker; production code leaves it nil (a
// single predictable branch per batch).
var shardConsumeHook func(shard int, recs []trace.Record)

// ParallelDetector is the multi-core detection engine. It runs the
// same three-step algorithm as the sequential Detector but fans the
// trace out to N worker shards keyed by the destination /PrefixBits
// prefix, so the whole hot path — header decode, replica matching,
// stream building, subnet validation, loop merging — runs
// concurrently.
//
// Why sharding by destination prefix is exact, not approximate:
//
//   - replica-stream building matches records on byte-equal masked
//     snapshots; the mask leaves the destination address intact, so
//     all observations of one looping packet carry the same
//     destination and land in the same shard;
//   - step-2 subnet validation and step-3 merging read only records
//     towards one /PrefixBits prefix, and a prefix is owned by
//     exactly one shard.
//
// Distinct prefixes therefore never interact until the final reduce,
// which only renumbers and re-sorts: per-shard results are remapped
// to global record indices, streams are ordered by the canonical
// (first-replica time, first-replica index) key and renumbered, loops
// are ordered by (start, prefix) — the same total orders the
// sequential Finish uses. The Result is identical in loop content to
// the sequential Detector's regardless of worker count or goroutine
// scheduling.
//
// Ingest is a pipeline: the caller's Observe/ObserveBatch calls are
// the decode/batch stage (they only read the destination bytes),
// records travel to shards in slices of DefaultBatchSize over bounded
// channels (backpressure, not unbounded queueing), and each shard
// feeds its own sequential Detector.
type ParallelDetector struct {
	cfg     Config
	workers int

	// pending accumulates the next outgoing batch per shard.
	pending []shardBatch
	shards  []*shardState
	wg      sync.WaitGroup

	n          int // records observed (global indices)
	shortShard int // round-robin shard for undecodable snapshots

	// cancel is closed by the first worker panic; producers then drop
	// batches and the remaining workers drain without processing.
	cancel     chan struct{}
	cancelOnce sync.Once
	panicMu    sync.Mutex
	panicErr   error

	// Optional instrumentation (see Instrument). reg doubles as the
	// "is instrumented" flag guarding the clock reads; the counters
	// are obs no-op sinks when nil.
	reg        *obs.Registry
	backNs     *obs.Counter
	backEvents *obs.Counter
}

// parallelBatchChannelDepth bounds the per-shard channel: with
// DefaultBatchSize-record batches this caps in-flight memory at
// workers × (depth+2) × DefaultBatchSize records.
const parallelBatchChannelDepth = 4

// shardBatch is one hand-off unit: records plus their global indices.
type shardBatch struct {
	recs []trace.Record
	idxs []int32
}

// shardState is one worker: a channel of batches, the shard's own
// sequential Detector, and the local-to-global index mapping.
type shardState struct {
	ch  chan shardBatch
	det *Detector
	// globals[i] is the global index of the shard's i-th record.
	globals []int32
	res     *Result

	// Per-shard instrumentation (nil no-op sinks when uninstrumented):
	// recs counts records this shard consumed, depth samples the
	// shard's queue occupancy at each hand-off.
	recs  *obs.Counter
	depth *obs.Gauge
}

// NewParallelDetector returns a parallel engine with the given number
// of worker shards (at least 1). Like NewDetector it panics on an
// invalid configuration; use New for an error-returning constructor.
func NewParallelDetector(cfg Config, workers int) *ParallelDetector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if workers < 1 {
		workers = 1
	}
	p := &ParallelDetector{
		cfg:     cfg,
		workers: workers,
		pending: make([]shardBatch, workers),
		shards:  make([]*shardState, workers),
		cancel:  make(chan struct{}),
	}
	for i := range p.shards {
		s := &shardState{
			ch:  make(chan shardBatch, parallelBatchChannelDepth),
			det: NewDetector(cfg),
		}
		p.shards[i] = s
		p.wg.Add(1)
		go p.worker(i, s)
	}
	return p
}

// worker is one shard's consume loop. A panic anywhere in the shard's
// processing (detector bug, malformed state, injected fault) must not
// kill the process or strand the producer mid-send: the panic is
// recovered, recorded as the detector's error, the peer shards are
// cancelled, and the channel is drained so Observe never blocks on a
// dead consumer.
func (p *ParallelDetector) worker(i int, s *shardState) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(i, r)
			// Unblock any in-flight producer sends, then keep draining
			// until Finish closes the channel.
			for range s.ch {
			}
		}
	}()
	for b := range s.ch {
		select {
		case <-p.cancel:
			continue // a peer panicked: drain without processing
		default:
		}
		if hook := shardConsumeHook; hook != nil {
			hook(i, b.recs)
		}
		s.recs.Add(int64(len(b.recs)))
		s.globals = append(s.globals, b.idxs...)
		for _, r := range b.recs {
			s.det.Observe(r)
		}
	}
	select {
	case <-p.cancel:
		// Cancelled: the result would be discarded anyway, and the
		// shard's state may be mid-update.
	default:
		s.res = s.det.Finish()
	}
}

// recordPanic stores the first worker panic (with stack) and cancels
// the peers.
func (p *ParallelDetector) recordPanic(shard int, v any) {
	p.panicMu.Lock()
	if p.panicErr == nil {
		p.panicErr = fmt.Errorf("%w: shard %d: %v\n%s", ErrWorkerPanic, shard, v, debug.Stack())
	}
	p.panicMu.Unlock()
	p.cancelOnce.Do(func() { close(p.cancel) })
}

// canceled reports whether a worker panic has cancelled the pipeline.
func (p *ParallelDetector) canceled() bool {
	select {
	case <-p.cancel:
		return true
	default:
		return false
	}
}

// Instrument wires the detector into a metrics registry: per-shard
// record counters and queue-depth gauges (shard balance), and the
// backpressure counters (time producers spend blocked on a full shard
// queue — the signal that detection, not ingest, is the bottleneck).
// Call it before the first Observe; core.New does so when built
// WithMetrics. Nil registry: no-op.
func (p *ParallelDetector) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	p.reg = r
	p.backNs = r.Counter(obs.MetricBackpressureNs)
	p.backEvents = r.Counter(obs.MetricBackpressureEvents)
	r.Gauge(obs.MetricEngineWorkers).Set(int64(p.workers))
	for i, s := range p.shards {
		s.recs = r.Counter(obs.ShardMetric(obs.MetricShardRecords, i))
		s.depth = r.Gauge(obs.ShardMetric(obs.MetricShardQueueDepth, i))
	}
}

// SetFlightRecorder attaches a flight recorder, giving each worker
// shard its own recorder shard so the hot paths never share a lock.
// Call it before the first Observe (core.New does so when built
// WithFlight); a nil recorder is the disabled default.
func (p *ParallelDetector) SetFlightRecorder(r *flight.Recorder) {
	if r == nil {
		return
	}
	for i, s := range p.shards {
		s.det.SetFlight(r.Shard(i))
	}
}

// shardOf routes a record by the masked destination address. The
// snapshot's destination lives at bytes 16..19 of the IPv4 header
// (fixed offset, independent of IHL), which is exactly the address
// packet.Decode reports — so a record that decodes lands in the shard
// that owns its prefix. Records too short to carry a destination
// cannot decode anyway (the shard's Detector counts the parse error);
// they are spread round-robin so a corrupt region cannot overload one
// shard.
func (p *ParallelDetector) shardOf(data []byte) int {
	if len(data) < 20 {
		p.shortShard++
		return p.shortShard % p.workers
	}
	dst := binary.BigEndian.Uint32(data[16:20])
	bits := p.cfg.PrefixBits
	var mask uint32
	if bits > 0 {
		mask = ^uint32(0) << (32 - bits)
	}
	// Fibonacci multiplicative mix: consecutive /24s must not stripe
	// into the same shard.
	h := (dst & mask) * 0x9e3779b1
	return int((uint64(h) * uint64(p.workers)) >> 32)
}

// Observe routes the next record to its shard, batching hand-offs.
// Records must arrive in non-decreasing time order.
func (p *ParallelDetector) Observe(rec trace.Record) {
	s := p.shardOf(rec.Data)
	b := &p.pending[s]
	if b.recs == nil {
		b.recs = make([]trace.Record, 0, trace.DefaultBatchSize)
		b.idxs = make([]int32, 0, trace.DefaultBatchSize)
	}
	b.recs = append(b.recs, rec)
	b.idxs = append(b.idxs, int32(p.n))
	p.n++
	if len(b.recs) >= trace.DefaultBatchSize {
		p.flushShard(s)
	}
}

// ObserveBatch routes a whole slice of records (BatchObserver).
func (p *ParallelDetector) ObserveBatch(recs []trace.Record) {
	for _, r := range recs {
		p.Observe(r)
	}
}

// flushShard sends the pending batch to the shard's worker. The send
// blocks when the shard is parallelBatchChannelDepth batches behind —
// the pipeline's backpressure. After a worker panic the batch is
// dropped instead: the run is already failed and the workers are only
// draining.
func (p *ParallelDetector) flushShard(s int) {
	b := p.pending[s]
	if len(b.recs) == 0 {
		return
	}
	p.pending[s] = shardBatch{}
	if p.canceled() {
		return
	}
	st := p.shards[s]
	if p.reg == nil {
		st.ch <- b
		return
	}
	// Instrumented: measure time blocked on a full queue (the
	// backpressure signal) and sample the queue depth after the send.
	select {
	case st.ch <- b:
	default:
		t := time.Now()
		st.ch <- b
		p.backNs.Add(time.Since(t).Nanoseconds())
		p.backEvents.Inc()
	}
	st.depth.Set(int64(len(st.ch)))
}

// Finish drains the pipeline and reduces the per-shard results into
// one Result identical to the sequential Detector's. If a worker
// shard panicked during the run, Finish re-raises the recovered panic
// on the calling goroutine as a wrapped *error* value (so the caller
// can recover a typed error instead of the process dying on an
// unreachable goroutine); error-aware callers should prefer
// FinishErr, which core.Run and the tools use.
func (p *ParallelDetector) Finish() *Result {
	res, err := p.FinishErr()
	if err != nil {
		panic(err)
	}
	return res
}

// FinishErr drains the pipeline and reduces the per-shard results,
// returning an error wrapping ErrWorkerPanic if any worker shard
// panicked (the Result is nil in that case: with a shard lost the
// reduce would be silently incomplete).
func (p *ParallelDetector) FinishErr() (*Result, error) {
	for s := range p.shards {
		p.flushShard(s)
		close(p.shards[s].ch)
	}
	p.wg.Wait()
	if p.panicErr != nil {
		return nil, p.panicErr
	}
	sp := p.reg.StartSpan("reduce")
	defer sp.End()

	res := &Result{
		TotalPackets: p.n,
		Membership:   make([]int32, p.n),
	}
	for i := range res.Membership {
		res.Membership[i] = -1
	}

	// Remap every shard-local record index to its global index, then
	// collect streams and loops.
	var streams []*ReplicaStream
	var loops []*Loop
	for _, s := range p.shards {
		sr := s.res
		res.ParseErrors += sr.ParseErrors
		res.LoopedPackets += sr.LoopedPackets
		res.PairsDiscarded += sr.PairsDiscarded
		res.SubnetInvalidated += sr.SubnetInvalidated
		for _, st := range sr.Streams {
			for i := range st.Replicas {
				st.Replicas[i].Index = int(s.globals[st.Replicas[i].Index])
			}
		}
		streams = append(streams, sr.Streams...)
		loops = append(loops, sr.Loops...)
	}

	// Renumber streams in the canonical global order (the same key the
	// sequential Finish sorts by).
	sort.Slice(streams, func(i, j int) bool {
		a, b := streams[i].Replicas[0], streams[j].Replicas[0]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Index < b.Index
	})
	for id, st := range streams {
		st.ID = id
		for _, r := range st.Replicas {
			res.Membership[r.Index] = int32(id)
		}
	}
	res.Streams = streams

	// Loops were merged per prefix inside their shard; the global
	// order is the same (start, prefix) key the sequential merge uses.
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Start != loops[j].Start {
			return loops[i].Start < loops[j].Start
		}
		return loops[i].Prefix.Addr.Uint32() < loops[j].Prefix.Addr.Uint32()
	})
	res.Loops = loops
	return res, nil
}

// Workers returns the number of worker shards.
func (p *ParallelDetector) Workers() int { return p.workers }
