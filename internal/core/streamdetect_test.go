package core

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"loopscope/internal/routing"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
	"loopscope/internal/traffic"
)

// collectStreaming runs the streaming detector over recs and returns
// its loops plus stats.
func collectStreaming(recs []trace.Record, cfg Config) ([]*Loop, StreamStats) {
	var loops []*Loop
	sd := NewStreamDetector(cfg, func(l *Loop) { loops = append(loops, l) })
	for _, r := range recs {
		sd.Observe(r)
	}
	stats := sd.FinishStats()
	return loops, stats
}

// loopKey compares loops structurally.
type loopKey struct {
	prefix     string
	start, end time.Duration
	streams    int
	replicas   int
}

func keysOf(loops []*Loop) []loopKey {
	out := make([]loopKey, 0, len(loops))
	for _, l := range loops {
		out = append(out, loopKey{
			prefix: l.Prefix.String(), start: l.Start, end: l.End,
			streams: len(l.Streams), replicas: l.Replicas(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].prefix != out[j].prefix {
			return out[i].prefix < out[j].prefix
		}
		return out[i].start < out[j].start
	})
	return out
}

// TestStreamingMatchesBatchQuick: the streaming detector must produce
// exactly the batch detector's loops on random traces.
func TestStreamingMatchesBatchQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		recs := randomTrace(seed, 20*time.Second, 700, 5)
		batch := DetectRecords(recs, cfg)
		sloops, stats := collectStreaming(recs, cfg)

		if stats.TotalPackets != batch.TotalPackets ||
			stats.LoopedPackets != batch.LoopedPackets ||
			stats.Streams != len(batch.Streams) ||
			stats.PairsDiscarded != batch.PairsDiscarded ||
			stats.SubnetInvalidated != batch.SubnetInvalidated {
			t.Logf("seed %d stats: stream=%+v batch={pkts %d looped %d streams %d pairs %d inval %d}",
				seed, stats, batch.TotalPackets, batch.LoopedPackets,
				len(batch.Streams), batch.PairsDiscarded, batch.SubnetInvalidated)
			return false
		}
		bk, sk := keysOf(batch.Loops), keysOf(sloops)
		if len(bk) != len(sk) {
			t.Logf("seed %d: batch %d loops, streaming %d", seed, len(bk), len(sk))
			return false
		}
		for i := range bk {
			if bk[i] != sk[i] {
				t.Logf("seed %d: loop %d differs: %+v vs %+v", seed, i, bk[i], sk[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestStreamingMatchesBatchWithWideGaps exercises the merge-window
// machinery: streams separated by tens of seconds.
func TestStreamingMatchesBatchWithWideGaps(t *testing.T) {
	var recs []trace.Record
	a := mkPkt("192.0.2.1", "203.0.113.5", 31, 64, 8)
	b := mkPkt("192.0.2.1", "203.0.113.5", 32, 64, 9)
	c := mkPkt("192.0.2.1", "203.0.113.5", 33, 64, 10)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, a, 6, 2)...)
	recs = append(recs, replicaRun(t, 30*time.Second, 10*time.Millisecond, b, 6, 2)...)
	recs = append(recs, replicaRun(t, 2*time.Minute, 10*time.Millisecond, c, 6, 2)...)
	// Background keeps the clock advancing so emission deadlines fire
	// before Finish.
	for i := 0; i < 300; i++ {
		recs = append(recs, rec(t, time.Duration(i)*time.Second,
			mkPkt("192.0.2.7", "198.51.100.9", uint16(1000+i), 60, uint64(5000+i))))
	}
	sortRecords(recs)

	batch := DetectRecords(recs, DefaultConfig())
	sloops, _ := collectStreaming(recs, DefaultConfig())
	bk, sk := keysOf(batch.Loops), keysOf(sloops)
	if len(bk) != len(sk) {
		t.Fatalf("batch %d loops, streaming %d", len(bk), len(sk))
	}
	for i := range bk {
		if bk[i] != sk[i] {
			t.Errorf("loop %d: %+v vs %+v", i, bk[i], sk[i])
		}
	}
	// Sanity: streams 1+2 merged (29s apart), stream 3 separate.
	if len(bk) != 2 {
		t.Errorf("loops = %d, want 2", len(bk))
	}
}

// TestStreamingEmitsBeforeFinish: a loop followed by minutes of other
// traffic must be emitted long before Finish.
func TestStreamingEmitsBeforeFinish(t *testing.T) {
	var recs []trace.Record
	a := mkPkt("192.0.2.1", "203.0.113.5", 41, 64, 11)
	recs = append(recs, replicaRun(t, time.Second, 10*time.Millisecond, a, 6, 2)...)
	for i := 0; i < 600; i++ {
		recs = append(recs, rec(t, time.Duration(i)*500*time.Millisecond,
			mkPkt("192.0.2.7", "198.51.100.9", uint16(1000+i), 60, uint64(9000+i))))
	}
	sortRecords(recs)

	emittedAt := -1
	var loops []*Loop
	sd := NewStreamDetector(DefaultConfig(), func(l *Loop) { loops = append(loops, l) })
	for i, r := range recs {
		sd.Observe(r)
		if len(loops) > 0 && emittedAt < 0 {
			emittedAt = i
		}
	}
	sd.Finish()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if emittedAt < 0 || emittedAt >= len(recs)-1 {
		t.Errorf("loop not emitted before the end of the trace (at %d of %d)", emittedAt, len(recs))
	}
}

// TestStreamingBoundedMemory: peak retained entries must track the
// undecided window, not the trace length.
func TestStreamingBoundedMemory(t *testing.T) {
	// A long quiet trace towards one prefix: hours of records, no
	// loops.
	var loops []*Loop
	sd := NewStreamDetector(DefaultConfig(), func(l *Loop) { loops = append(loops, l) })
	const n = 200000
	for i := 0; i < n; i++ {
		p := mkPkt("192.0.2.1", "198.51.100.9", uint16(i%60000+1), 60, uint64(i))
		sd.Observe(rec(t, time.Duration(i)*50*time.Millisecond, p))
	}
	stats := sd.FinishStats()
	if stats.TotalPackets != n {
		t.Fatalf("packets = %d", stats.TotalPackets)
	}
	if len(loops) != 0 {
		t.Fatalf("phantom loops: %d", len(loops))
	}
	// 50 ms spacing, decisions bounded by MaxReplicaGap (2 s): the
	// retained tail should be on the order of tens-to-hundreds of
	// entries, never the full 200k.
	if stats.PeakPrefixEntries > 2000 {
		t.Errorf("peak retained entries = %d; memory is not bounded", stats.PeakPrefixEntries)
	}
}

// TestStreamingScale pushes a multi-million-record synthesized trace
// through the streaming detector without ever materialising it,
// asserting bounded retained state — the "apply it to a real
// multi-hour capture" scalability claim.
func TestStreamingScale(t *testing.T) {
	if testing.Short() {
		t.Skip("several million records")
	}
	var dests []routing.Prefix
	for i := 0; i < 256; i++ {
		dests = append(dests, routing.NewPrefix(
			[4]byte{198, byte(20 + i/256), byte(i), 0}, 24))
	}
	rng := stats.NewRNG(31)
	cfg := traffic.SynthConfig{
		Duration: 10 * time.Minute, PacketsPerSecond: 8000,
		Mix: traffic.DefaultMix(), DestPrefixes: dests,
		HopsMin: 3, HopsMax: 10,
	}
	for i := 0; i < 40; i++ {
		cfg.Loops = append(cfg.Loops, traffic.LoopSpec{
			Prefix:     dests[rng.Intn(len(dests))],
			Start:      time.Duration(rng.Int63n(int64(9 * time.Minute))),
			Duration:   time.Duration(200+rng.Intn(4000)) * time.Millisecond,
			TTLDelta:   2 + rng.Intn(4),
			Revolution: time.Duration(2+rng.Intn(5)) * time.Millisecond,
		})
	}

	loops := 0
	sd := NewStreamDetector(DefaultConfig(), func(*Loop) { loops++ })
	n := 0
	traffic.SynthesizeStream(cfg, rng, func(r trace.Record) {
		n++
		sd.Observe(r)
	})
	stats := sd.FinishStats()
	if n < 4_000_000 {
		t.Fatalf("only %d records", n)
	}
	if stats.TotalPackets != n {
		t.Fatalf("observed %d of %d", stats.TotalPackets, n)
	}
	if loops < 20 {
		t.Errorf("loops = %d, expected most of the 40 scripted events", loops)
	}
	// Retained state must track the undecided window (seconds of
	// traffic for one prefix), not the 4M+ trace.
	if stats.PeakPrefixEntries > 200_000 {
		t.Errorf("peak retained entries %d — memory not bounded", stats.PeakPrefixEntries)
	}
	t.Logf("records=%d loops=%d streams=%d peakEntries=%d",
		n, loops, stats.Streams, stats.PeakPrefixEntries)
}
