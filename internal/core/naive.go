package core

import (
	"bytes"
	"time"

	"loopscope/internal/obs/flight"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// NaiveDetector is a reference implementation of the replica-stream
// scan (step 1) that keeps open streams in a flat slice and compares
// every arriving record against each of them, instead of hashing the
// masked header. It exists for two reasons:
//
//   - differential testing: its results must equal Detector's exactly
//     on every input;
//   - the data-structure ablation benchmark, quantifying what the
//     hash index buys on real trace volumes.
//
// Validation and merging (steps 2 and 3) are identical, shared code.
type NaiveDetector struct {
	inner     *Detector
	open      []*builder
	lastSweep time.Duration
}

// NewNaiveDetector returns a naive-scan detector with the given
// configuration.
func NewNaiveDetector(cfg Config) *NaiveDetector {
	return &NaiveDetector{inner: NewDetector(cfg)}
}

// Observe processes the next trace record (records must be in
// non-decreasing time order).
func (n *NaiveDetector) Observe(rec trace.Record) {
	d := n.inner
	idx := d.n
	d.n++
	d.memberOf = append(d.memberOf, -1)
	d.times = append(d.times, rec.Time)

	pkt, err := packet.Decode(rec.Data)
	if err != nil {
		d.parseErrors++
		return
	}
	pfx := routing.PrefixOf(pkt.IP.Dst, d.cfg.PrefixBits)
	d.byPrefix[pfx] = append(d.byPrefix[pfx], int32(idx))

	masked := maskReplica(rec.Data)
	rep := Replica{Time: rec.Time, TTL: pkt.IP.TTL, Index: idx}

	var match *builder
	for _, b := range n.open {
		if bytes.Equal(b.masked, masked) {
			match = b
			break
		}
	}
	fresh := func() *builder {
		return &builder{
			masked: masked, prefix: pfx, summary: summarize(&pkt),
			replicas: []Replica{rep}, serial: -1,
			lastTTL: rep.TTL, lastTime: rep.Time,
		}
	}
	switch delta := 0; {
	case match == nil:
		n.open = append(n.open, fresh())
	case rec.Time-match.lastTime > d.cfg.MaxReplicaGap:
		d.flush(match, flight.ReasonReplicaGap)
		n.remove(match)
		n.open = append(n.open, fresh())
	default:
		delta = int(match.lastTTL) - int(pkt.IP.TTL)
		switch {
		case delta >= d.cfg.MinTTLDelta:
			match.replicas = append(match.replicas, rep)
			match.observe(pkt.IP.TTL, rec.Time)
		case delta >= 0:
			match.extras = append(match.extras, idx)
			match.observe(pkt.IP.TTL, rec.Time)
		default:
			d.flush(match, flight.ReasonTTLRise)
			n.remove(match)
			n.open = append(n.open, fresh())
		}
	}

	if rec.Time-n.lastSweep > d.cfg.MaxReplicaGap {
		kept := n.open[:0]
		for _, b := range n.open {
			if rec.Time-b.lastTime > d.cfg.MaxReplicaGap {
				d.flush(b, flight.ReasonReplicaGap)
			} else {
				kept = append(kept, b)
			}
		}
		n.open = kept
		n.lastSweep = rec.Time
	}
}

func (n *NaiveDetector) remove(b *builder) {
	for i, x := range n.open {
		if x == b {
			n.open[i] = n.open[len(n.open)-1]
			n.open = n.open[:len(n.open)-1]
			return
		}
	}
}

// Finish closes open streams and runs the shared validation and
// merging.
func (n *NaiveDetector) Finish() *Result {
	for _, b := range n.open {
		n.inner.flush(b, flight.ReasonEndOfTrace)
	}
	n.open = nil
	return n.inner.Finish()
}

// NaiveDetectRecords runs the naive pipeline over an in-memory trace.
func NaiveDetectRecords(recs []trace.Record, cfg Config) *Result {
	d := NewNaiveDetector(cfg)
	for _, r := range recs {
		d.Observe(r)
	}
	return d.Finish()
}
