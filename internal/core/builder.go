package core

import (
	"time"

	"loopscope/internal/packet"
	"loopscope/internal/routing"
)

// This file holds the replica-stream building machinery shared by
// every Engine implementation: the batch Detector, the NaiveDetector
// reference, and each shard of the ParallelDetector run the same
// builder life cycle (start on first observation, extend on a valid
// TTL decrement, flush on staleness or reappearance).

// decodeDst extracts just the destination address from a snapshot.
func decodeDst(data []byte) (packet.Addr, error) {
	p, err := packet.DecodeIPv4(data)
	if err != nil {
		return packet.Addr{}, err
	}
	return p.Dst, nil
}

// fnv64a hashes b with FNV-1a.
func fnv64a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// maskReplica zeroes the fields allowed to differ between replicas —
// the TTL and the IP header checksum — in a copy of the captured
// bytes. Everything else (the rest of the IP header, the transport
// header including its checksum, any captured payload) must match
// byte-for-byte, which is exactly the paper's replica definition: the
// transport checksum stands in for payload identity on truncated
// snapshots.
func maskReplica(data []byte) []byte {
	m := make([]byte, len(data))
	copy(m, data)
	if len(m) > 8 {
		m[8] = 0 // TTL
	}
	if len(m) > 11 {
		m[10], m[11] = 0, 0 // IP header checksum
	}
	return m
}

// builder accumulates one replica stream during the scan.
type builder struct {
	masked   []byte
	hash     uint64
	prefix   routing.Prefix
	summary  PacketSummary
	replicas []Replica
	// done marks a builder already flushed/removed, so stale expiry
	// queue entries skip it.
	done bool
	// frOpen marks that a stream-open event was recorded for this
	// builder (flight recording is lazy: nothing is recorded until the
	// second replica arrives).
	frOpen bool
	// extras are record indices of link-layer duplicate observations
	// (same bytes, TTL decrement below MinTTLDelta): not replicas,
	// but they belong to this packet for membership purposes.
	extras []int
	serial int32 // membership serial, assigned at flush
	// lastTTL/lastTime track the most recent observation — replica or
	// duplicate — so a delta-1 chain cannot ratchet itself into a
	// fake delta-2 stream.
	lastTTL  uint8
	lastTime time.Duration
}

func (b *builder) observe(ttl uint8, at time.Duration) {
	b.lastTTL = ttl
	b.lastTime = at
}

// expiryEntry schedules a staleness check for a builder.
type expiryEntry struct {
	b  *builder
	at time.Duration
}

func summarize(p *packet.Packet) PacketSummary {
	s := PacketSummary{
		Src:       p.IP.Src,
		Dst:       p.IP.Dst,
		ID:        p.IP.ID,
		Protocol:  p.IP.Protocol,
		SrcPort:   p.SrcPort(),
		DstPort:   p.DstPort(),
		WireLen:   int(p.IP.TotalLength),
		ClassMask: uint16(packet.Classify(p)),
	}
	if p.Kind == packet.KindTCP && p.HasTransport {
		s.TCPFlags = p.TCP.Flags
	}
	if p.Kind == packet.KindICMP && p.HasTransport {
		s.ICMPType = p.ICMP.Type
	}
	return s
}
