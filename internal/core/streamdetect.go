package core

import (
	"bytes"
	"sort"
	"time"

	"loopscope/internal/obs/flight"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// StreamDetector is the bounded-memory variant of the detector: it
// emits each routing loop as soon as the loop can no longer change —
// no packet still in flight could validate into it or merge with it —
// and evicts per-packet state that no future decision can read.
//
// The batch Detector needs the whole trace in memory because step 2
// (subnet validation) and step 3 (merging) look backwards at every
// packet towards a prefix. Those look-backs are bounded in time,
// though:
//
//   - a stream is validated once every packet in its window has a
//     settled membership, which happens as soon as no still-open
//     replica stream towards the same /24 began before the window's
//     end;
//   - a loop is final once no stream that could merge into it (start
//     within MergeWindow of its end) can still appear.
//
// Tracking the earliest still-undecided time per prefix therefore
// gives an exact, incremental version of the batch algorithm:
// StreamDetector produces byte-identical loops (differentially tested)
// while holding only the undecided tail of the trace.
//
// Use it for feeds or multi-hour captures:
//
//	sd := core.NewStreamDetector(cfg, func(l *core.Loop) { ... })
//	for each record { sd.Observe(rec) }
//	stats := sd.FinishStats()
//
// StreamDetector implements Engine: Finish returns the run as a
// *Result (see its doc for what a streaming Result carries).
type StreamDetector struct {
	cfg  Config
	emit func(*Loop)
	// emitted retains every emitted loop for the Engine-shaped
	// Finish. Loops are few (streams collapse into them), so this
	// does not threaten the bounded-memory property, which is about
	// per-packet state.
	emitted []*Loop

	active   map[uint64][]*sbuilder
	byPrefix map[routing.Prefix]*prefixState

	// Governor state (Config.MaxActiveStreams > 0): live builders form
	// an intrusive LRU list ordered by last activity, lruHead coldest.
	// Everything here is a pure function of the record sequence — the
	// list is touched in Observe order, never map order — so a governed
	// detector replays deterministically.
	lruHead, lruTail *sbuilder
	liveBuilders     int
	shedStreams      int64 // builders evicted at the cap
	shedPackets      int64 // packets refused a new builder at the cap
	admitRefused     int64 // refusals since start, drives sampled admission

	now         time.Duration
	n           int
	parseErrors int
	pairs       int
	subnetInval int
	looped      int
	streams     int
	lastSweep   time.Duration

	// peakEntries gauges the bounded-memory claim in tests.
	peakEntries int

	// fr, when non-nil, receives lifecycle events for the flight
	// recorder. Recording never changes detection decisions.
	fr *flight.ShardRecorder
}

// pktEntry is the retained per-packet state: arrival time and whether
// the packet turned out to belong to a replica stream.
type pktEntry struct {
	t      time.Duration
	member bool
}

// sbuilder is the streaming twin of builder.
type sbuilder struct {
	masked   []byte
	hash     uint64
	prefix   routing.Prefix
	summary  PacketSummary
	replicas []Replica
	// entries point at the retained state of every observation
	// (replicas and duplicate extras) so flush can settle membership.
	entries   []*pktEntry
	lastTTL   uint8
	lastTime  time.Duration
	firstTime time.Duration
	// frOpen marks that a stream-open flight event was recorded (lazy:
	// nothing is recorded until the second replica).
	frOpen bool
	// lruPrev/lruNext thread the builder into the governor's
	// last-activity list while it is live.
	lruPrev, lruNext *sbuilder
}

// pendingStream is a flushed candidate awaiting validation.
type pendingStream struct {
	b          *sbuilder
	start, end time.Duration
}

// prefixState is everything retained for one /24.
type prefixState struct {
	entries []*pktEntry
	// actives are open builders towards this prefix (for the settle
	// computation).
	actives map[*sbuilder]bool
	// pending are flushed candidates (>= MinReplicas) awaiting
	// settlement, unordered.
	pending []pendingStream
	// validated are validated streams not yet folded into loops,
	// sorted by start.
	validated []*ReplicaStream
	// open is the loop currently accepting streams.
	open *Loop
}

// NewStreamDetector returns a streaming detector; emit receives every
// finalized loop, in order of finalization (per prefix this is start
// order; across prefixes it follows the trace clock).
func NewStreamDetector(cfg Config, emit func(*Loop)) *StreamDetector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if emit == nil {
		emit = func(*Loop) {}
	}
	d := &StreamDetector{
		cfg:      cfg,
		active:   make(map[uint64][]*sbuilder),
		byPrefix: make(map[routing.Prefix]*prefixState),
	}
	d.emit = func(l *Loop) {
		d.emitted = append(d.emitted, l)
		emit(l)
	}
	return d
}

// SetFlight attaches a flight-recorder shard. Call before the first
// Observe; a nil shard (the default) keeps recording disabled.
func (d *StreamDetector) SetFlight(sr *flight.ShardRecorder) { d.fr = sr }

func (d *StreamDetector) state(p routing.Prefix) *prefixState {
	ps := d.byPrefix[p]
	if ps == nil {
		ps = &prefixState{actives: make(map[*sbuilder]bool)}
		d.byPrefix[p] = ps
	}
	return ps
}

// Observe processes the next record; records must arrive in
// non-decreasing time order.
func (d *StreamDetector) Observe(rec trace.Record) {
	d.n++
	d.now = rec.Time

	pkt, err := packet.Decode(rec.Data)
	if err != nil {
		d.parseErrors++
		return
	}
	pfx := routing.PrefixOf(pkt.IP.Dst, d.cfg.PrefixBits)
	ps := d.state(pfx)
	entry := &pktEntry{t: rec.Time}
	ps.entries = append(ps.entries, entry)

	masked := maskReplica(rec.Data)
	h := fnv64a(masked)
	rep := Replica{Time: rec.Time, TTL: pkt.IP.TTL, Index: d.n - 1}

	var match *sbuilder
	for _, b := range d.active[h] {
		if bytes.Equal(b.masked, masked) {
			match = b
			break
		}
	}
	start := func() {
		if !d.admitStream() {
			// Refused admission: the packet starts no builder and, having
			// no chance of ever becoming a member, must not sit in the
			// prefix window either — a non-member entry would invalidate
			// every genuine stream overlapping it (step 2).
			ps.entries = ps.entries[:len(ps.entries)-1]
			return
		}
		b := &sbuilder{
			masked: masked, hash: h, prefix: pfx,
			summary:  summarize(&pkt),
			replicas: []Replica{rep},
			entries:  []*pktEntry{entry},
			lastTTL:  rep.TTL, lastTime: rep.Time, firstTime: rep.Time,
		}
		d.active[h] = append(d.active[h], b)
		ps.actives[b] = true
		d.lruPush(b)
	}
	switch {
	case match == nil:
		start()
	case rec.Time-match.lastTime > d.cfg.MaxReplicaGap:
		d.flushStream(match, flight.ReasonReplicaGap)
		d.removeActiveS(match)
		start()
	default:
		delta := int(match.lastTTL) - int(pkt.IP.TTL)
		switch {
		case delta >= d.cfg.MinTTLDelta:
			match.replicas = append(match.replicas, rep)
			match.entries = append(match.entries, entry)
			match.lastTTL, match.lastTime = rep.TTL, rep.Time
			d.lruTouch(match)
			if d.fr != nil {
				d.frExtendS(match, rep, delta)
			}
		case delta >= 0:
			match.entries = append(match.entries, entry)
			match.lastTTL, match.lastTime = rep.TTL, rep.Time
			d.lruTouch(match)
			if d.fr != nil && match.frOpen && d.fr.SampleReplica(len(match.entries)-len(match.replicas)) {
				d.fr.Record(flight.Event{Time: rec.Time, Kind: flight.KindDuplicate,
					Prefix: match.prefix, Stream: match.hash, TTL: pkt.IP.TTL, Delta: delta})
			}
		default:
			d.flushStream(match, flight.ReasonTTLRise)
			d.removeActiveS(match)
			start()
		}
	}

	if rec.Time-d.lastSweep > d.cfg.MaxReplicaGap {
		d.sweepStale(rec.Time)
		d.advanceAll()
		d.lastSweep = rec.Time
	}
}

func (d *StreamDetector) removeActiveS(b *sbuilder) {
	lst := d.active[b.hash]
	for i, x := range lst {
		if x == b {
			lst[i] = lst[len(lst)-1]
			d.active[b.hash] = lst[:len(lst)-1]
			break
		}
	}
	if len(d.active[b.hash]) == 0 {
		delete(d.active, b.hash)
	}
	delete(d.state(b.prefix).actives, b)
	d.lruRemove(b)
}

// ---------------------------------------------------------------------------
// Memory governor.

// lruPush appends a new live builder at the warm end of the
// last-activity list.
func (d *StreamDetector) lruPush(b *sbuilder) {
	b.lruPrev = d.lruTail
	b.lruNext = nil
	if d.lruTail != nil {
		d.lruTail.lruNext = b
	} else {
		d.lruHead = b
	}
	d.lruTail = b
	d.liveBuilders++
}

// lruUnlink removes b from the list without touching the live count.
func (d *StreamDetector) lruUnlink(b *sbuilder) {
	if b.lruPrev != nil {
		b.lruPrev.lruNext = b.lruNext
	} else {
		d.lruHead = b.lruNext
	}
	if b.lruNext != nil {
		b.lruNext.lruPrev = b.lruPrev
	} else {
		d.lruTail = b.lruPrev
	}
	b.lruPrev, b.lruNext = nil, nil
}

// lruRemove retires a builder from the governor's view.
func (d *StreamDetector) lruRemove(b *sbuilder) {
	d.lruUnlink(b)
	d.liveBuilders--
}

// lruTouch moves a builder to the warm end after activity.
func (d *StreamDetector) lruTouch(b *sbuilder) {
	if d.lruTail == b {
		return
	}
	d.lruUnlink(b)
	b.lruPrev = d.lruTail
	if d.lruTail != nil {
		d.lruTail.lruNext = b
	} else {
		d.lruHead = b
	}
	d.lruTail = b
}

// admitStream decides whether a new builder may start. Below the cap
// (or with no cap) it always may. At the cap it first tries to evict
// a low-value victim — scanning a bounded number of the coldest
// builders for one that has not reached MemberReplicas, i.e. state
// that cannot yet be evidence of anything. Failing that, admission
// degrades to sampling: most newcomers are refused (counted in
// shedPackets), but every 16th refusal force-evicts the coldest
// builder instead, so sustained pressure slows stream formation
// rather than freezing out all new traffic.
func (d *StreamDetector) admitStream() bool {
	if d.cfg.MaxActiveStreams <= 0 || d.liveBuilders < d.cfg.MaxActiveStreams {
		return true
	}
	const victimScan = 8
	b := d.lruHead
	for i := 0; b != nil && i < victimScan; i++ {
		if len(b.replicas) < d.cfg.MemberReplicas {
			d.evictStream(b)
			return true
		}
		b = b.lruNext
	}
	d.admitRefused++
	if d.admitRefused%16 == 0 && d.lruHead != nil {
		d.evictStream(d.lruHead)
		return true
	}
	d.shedPackets++
	return false
}

// evictStream force-closes a builder at the cap. Closing goes through
// the normal flush, so replicas already collected keep their
// evidentiary value: a builder past MinReplicas still becomes a loop
// candidate, merely cut short.
func (d *StreamDetector) evictStream(b *sbuilder) {
	d.shedStreams++
	d.flushStream(b, flight.ReasonShed)
	d.removeActiveS(b)
}

// ShedCounts is the governor's running account of what overload
// protection gave up.
type ShedCounts struct {
	// Streams is the number of live builders force-closed at the cap.
	Streams int64
	// Packets is the number of packets refused a new builder at the
	// cap (sampled admission).
	Packets int64
}

// Shed returns the current shed counters (zero without a cap).
func (d *StreamDetector) Shed() ShedCounts {
	return ShedCounts{Streams: d.shedStreams, Packets: d.shedPackets}
}

// LiveBuilders returns the number of live stream builders — the state
// the governor caps.
func (d *StreamDetector) LiveBuilders() int { return d.liveBuilders }

func (d *StreamDetector) sweepStale(now time.Duration) {
	for h, lst := range d.active {
		kept := lst[:0]
		for _, b := range lst {
			if now-b.lastTime > d.cfg.MaxReplicaGap {
				d.flushStream(b, flight.ReasonReplicaGap)
				delete(d.state(b.prefix).actives, b)
				d.lruRemove(b)
			} else {
				kept = append(kept, b)
			}
		}
		if len(kept) == 0 {
			delete(d.active, h)
		} else {
			d.active[h] = kept
		}
	}
}

// frExtendS records a sampled replica-extension event, lazily opening
// the stream's flight record on its second replica so non-looping
// traffic (single-replica builders) never touches the recorder.
func (d *StreamDetector) frExtendS(b *sbuilder, rep Replica, delta int) {
	if !b.frOpen {
		b.frOpen = true
		first := b.replicas[0]
		d.fr.Record(flight.Event{Time: first.Time, Kind: flight.KindStreamOpen,
			Prefix: b.prefix, Stream: b.hash, TTL: first.TTL})
	}
	if n := len(b.replicas); d.fr.SampleReplica(n) {
		d.fr.Record(flight.Event{Time: rep.Time, Kind: flight.KindReplica,
			Prefix: b.prefix, Stream: b.hash, TTL: rep.TTL, Delta: delta, Count: n})
	}
}

// flushStream retires a builder: settle membership and queue loop
// candidates.
func (d *StreamDetector) flushStream(b *sbuilder, why flight.Reason) {
	n := len(b.replicas)
	if d.fr != nil && b.frOpen {
		d.fr.Record(flight.Event{Time: b.lastTime, Kind: flight.KindStreamClose,
			Reason: why, Prefix: b.prefix, Stream: b.hash, Count: n})
	}
	if n < d.cfg.MemberReplicas {
		return
	}
	if n == 2 {
		d.pairs++
	}
	for _, e := range b.entries {
		e.member = true
	}
	if n < d.cfg.MinReplicas {
		if d.fr != nil && b.frOpen {
			why := flight.ReasonBelowMinReplicas
			if n == 2 {
				why = flight.ReasonPairDiscarded
			}
			d.fr.Record(flight.Event{Time: b.replicas[0].Time, Kind: flight.KindReject,
				Reason: why, Prefix: b.prefix, Stream: b.hash, Count: n})
		}
		return
	}
	if d.fr != nil && b.frOpen {
		d.fr.Record(flight.Event{Time: b.replicas[0].Time, Kind: flight.KindCandidate,
			Prefix: b.prefix, Stream: b.hash, Count: n})
	}
	ps := d.state(b.prefix)
	ps.pending = append(ps.pending, pendingStream{
		b:     b,
		start: b.replicas[0].Time,
		end:   b.replicas[n-1].Time,
	})
}

// settleStart returns the earliest time at which membership towards
// the prefix is still undecided, and the earliest start of a stream
// that has not yet been folded into a loop. Infinite when nothing is
// open.
func (ps *prefixState) settleStart() (undecided, earliestStream time.Duration) {
	const inf = time.Duration(1<<63 - 1)
	undecided, earliestStream = inf, inf
	for b := range ps.actives {
		if b.firstTime < undecided {
			undecided = b.firstTime
		}
		if b.firstTime < earliestStream {
			earliestStream = b.firstTime
		}
	}
	for _, p := range ps.pending {
		if p.start < earliestStream {
			earliestStream = p.start
		}
	}
	for _, s := range ps.validated {
		if s.Start() < earliestStream {
			earliestStream = s.Start()
		}
	}
	return undecided, earliestStream
}

// subnetCleanS is the streaming subnet check over retained entries.
func (ps *prefixState) subnetCleanS(from, to time.Duration) bool {
	lo := sort.Search(len(ps.entries), func(i int) bool {
		return ps.entries[i].t >= from
	})
	for i := lo; i < len(ps.entries) && ps.entries[i].t <= to; i++ {
		if !ps.entries[i].member {
			return false
		}
	}
	return true
}

// advanceAll makes progress on validation, folding and emission for
// every prefix with state, then evicts unreachable entries. Prefixes
// are visited in address order, never map order: emission order must
// be a pure function of the record sequence so that a resumed run can
// suppress replayed emissions by count (core.Session.SetReplay).
func (d *StreamDetector) advanceAll() {
	pfxs := make([]routing.Prefix, 0, len(d.byPrefix))
	for p := range d.byPrefix {
		pfxs = append(pfxs, p)
	}
	sortPrefixes(pfxs)
	for _, p := range pfxs {
		d.advance(p, d.byPrefix[p], false)
	}
}

// sortPrefixes orders prefixes by address then width — the canonical
// traversal order shared by the periodic sweep and the final flush.
func sortPrefixes(pfxs []routing.Prefix) {
	sort.Slice(pfxs, func(i, j int) bool {
		if pfxs[i].Addr != pfxs[j].Addr {
			return pfxs[i].Addr.Uint32() < pfxs[j].Addr.Uint32()
		}
		return pfxs[i].Bits < pfxs[j].Bits
	})
}

func (d *StreamDetector) advance(pfx routing.Prefix, ps *prefixState, final bool) {
	undecided, _ := ps.settleStart()

	// Validate pending streams whose windows are fully settled.
	kept := ps.pending[:0]
	for _, p := range ps.pending {
		settled := undecided > p.end && d.now-p.end > d.cfg.MaxReplicaGap
		if !settled && !final {
			kept = append(kept, p)
			continue
		}
		if d.cfg.ValidateSubnet && !ps.subnetCleanS(p.start, p.end) {
			d.subnetInval++
			if d.fr != nil && p.b.frOpen {
				d.fr.Record(flight.Event{Time: p.start, Kind: flight.KindReject,
					Reason: flight.ReasonSubnetInvalidated, Prefix: pfx,
					Stream: p.b.hash, Count: len(p.b.replicas)})
			}
			continue
		}
		if d.fr != nil && p.b.frOpen {
			d.fr.Record(flight.Event{Time: p.start, Kind: flight.KindValidated,
				Prefix: pfx, Stream: p.b.hash, Count: len(p.b.replicas)})
		}
		s := &ReplicaStream{
			ID:       d.streams,
			Prefix:   pfx,
			Replicas: p.b.replicas,
			Summary:  p.b.summary,
		}
		d.streams++
		d.looped += len(p.b.replicas)
		// Insert sorted by start.
		i := sort.Search(len(ps.validated), func(i int) bool {
			return ps.validated[i].Start() > s.Start()
		})
		ps.validated = append(ps.validated, nil)
		copy(ps.validated[i+1:], ps.validated[i:])
		ps.validated[i] = s
	}
	ps.pending = kept

	// Fold validated streams into the open loop, in start order. A
	// stream may be folded once no undecided or pending stream could
	// precede it.
	for len(ps.validated) > 0 {
		s := ps.validated[0]
		barrier, _ := ps.settleStart()
		pendingBefore := false
		for _, p := range ps.pending {
			if p.start <= s.Start() {
				pendingBefore = true
			}
		}
		if !final && (barrier <= s.Start() || pendingBefore) {
			break
		}
		ps.validated = ps.validated[1:]
		switch {
		case ps.open == nil:
			ps.open = &Loop{Prefix: pfx, Streams: []*ReplicaStream{s},
				Start: s.Start(), End: s.End()}
			if d.fr != nil {
				d.fr.Record(flight.Event{Time: ps.open.Start, Kind: flight.KindLoopOpen, Prefix: pfx})
			}
		case s.Start() <= ps.open.End:
			ps.open.Streams = append(ps.open.Streams, s)
			if s.End() > ps.open.End {
				ps.open.End = s.End()
			}
			if d.fr != nil {
				d.fr.Record(flight.Event{Time: s.Start(), Kind: flight.KindMerge,
					Prefix: pfx, Count: len(ps.open.Streams)})
			}
		case s.Start()-ps.open.End < d.cfg.MergeWindow &&
			(!d.cfg.ValidateSubnet || ps.subnetCleanS(ps.open.End, s.Start())):
			gap := s.Start() - ps.open.End
			ps.open.Streams = append(ps.open.Streams, s)
			if s.End() > ps.open.End {
				ps.open.End = s.End()
			}
			if d.fr != nil {
				d.fr.Record(flight.Event{Time: s.Start(), Kind: flight.KindMerge,
					Prefix: pfx, Count: len(ps.open.Streams), Gap: gap})
			}
		default:
			if d.fr != nil {
				d.fr.Record(flight.Event{Time: ps.open.End, Kind: flight.KindLoopFinal,
					Prefix: pfx, Count: len(ps.open.Streams)})
				why := flight.ReasonDirtyGap
				if s.Start()-ps.open.End >= d.cfg.MergeWindow {
					why = flight.ReasonMergeGapWide
				}
				d.fr.Record(flight.Event{Time: s.Start(), Kind: flight.KindLoopOpen,
					Reason: why, Prefix: pfx})
			}
			d.emit(ps.open)
			ps.open = &Loop{Prefix: pfx, Streams: []*ReplicaStream{s},
				Start: s.Start(), End: s.End()}
		}
	}

	// Emit the open loop once nothing can merge into it any more.
	if ps.open != nil {
		_, earliest := ps.settleStart()
		deadline := ps.open.End + d.cfg.MergeWindow
		if final || (d.now > deadline && earliest > deadline) {
			if d.fr != nil {
				d.fr.Record(flight.Event{Time: ps.open.End, Kind: flight.KindLoopFinal,
					Prefix: pfx, Count: len(ps.open.Streams)})
			}
			d.emit(ps.open)
			ps.open = nil
		}
	}

	// Evict entries nothing can read any more.
	needLow := d.now
	if ps.open != nil && ps.open.End < needLow {
		needLow = ps.open.End
	}
	u, e := ps.settleStart()
	if u < needLow {
		needLow = u
	}
	if e < needLow {
		needLow = e
	}
	cut := sort.Search(len(ps.entries), func(i int) bool {
		return ps.entries[i].t >= needLow
	})
	if cut > 0 {
		ps.entries = append([]*pktEntry(nil), ps.entries[cut:]...)
	}
	if live := len(ps.entries); live > d.peakEntries {
		d.peakEntries = live
	}
	if len(ps.entries) == 0 && len(ps.pending) == 0 &&
		len(ps.validated) == 0 && len(ps.actives) == 0 && ps.open == nil {
		delete(d.byPrefix, pfx)
	}
}

// StreamStats summarises a finished streaming run.
type StreamStats struct {
	TotalPackets      int
	LoopedPackets     int
	Streams           int
	ParseErrors       int
	PairsDiscarded    int
	SubnetInvalidated int
	// PeakPrefixEntries is the largest per-prefix retained-entry
	// count observed — the bounded-memory gauge.
	PeakPrefixEntries int
	// ShedStreams and ShedPackets account for what the memory
	// governor gave up under its cap (zero without one).
	ShedStreams int64
	ShedPackets int64
}

// Finish implements Engine: it flushes all remaining state (emitting
// every outstanding loop) and returns the run as a *Result. A
// streaming Result carries the loops in emission order re-sorted by
// (start, prefix), the validated streams sorted by start, and the
// run's counters; Membership is nil — the per-record index is exactly
// the state the bounded-memory detector evicts.
func (d *StreamDetector) Finish() *Result {
	stats := d.FinishStats()
	res := &Result{
		TotalPackets:      stats.TotalPackets,
		LoopedPackets:     stats.LoopedPackets,
		ParseErrors:       stats.ParseErrors,
		PairsDiscarded:    stats.PairsDiscarded,
		SubnetInvalidated: stats.SubnetInvalidated,
		Loops:             d.emitted,
	}
	sort.Slice(res.Loops, func(i, j int) bool {
		if res.Loops[i].Start != res.Loops[j].Start {
			return res.Loops[i].Start < res.Loops[j].Start
		}
		return res.Loops[i].Prefix.Addr.Uint32() < res.Loops[j].Prefix.Addr.Uint32()
	})
	for _, l := range res.Loops {
		res.Streams = append(res.Streams, l.Streams...)
	}
	sort.Slice(res.Streams, func(i, j int) bool {
		if res.Streams[i].Start() != res.Streams[j].Start() {
			return res.Streams[i].Start() < res.Streams[j].Start()
		}
		return res.Streams[i].ID < res.Streams[j].ID
	})
	return res
}

// FinishStats flushes all remaining state, emitting every outstanding
// loop, and returns the run statistics.
func (d *StreamDetector) FinishStats() StreamStats {
	for _, lst := range d.active {
		for _, b := range lst {
			d.flushStream(b, flight.ReasonEndOfTrace)
			delete(d.state(b.prefix).actives, b)
		}
	}
	d.active = make(map[uint64][]*sbuilder)
	d.lruHead, d.lruTail, d.liveBuilders = nil, nil, 0
	// Deterministic final order: prefixes by address.
	var pfxs []routing.Prefix
	for p := range d.byPrefix {
		pfxs = append(pfxs, p)
	}
	sortPrefixes(pfxs)
	for _, p := range pfxs {
		d.advance(p, d.byPrefix[p], true)
	}
	return StreamStats{
		TotalPackets:      d.n,
		LoopedPackets:     d.looped,
		Streams:           d.streams,
		ParseErrors:       d.parseErrors,
		PairsDiscarded:    d.pairs,
		SubnetInvalidated: d.subnetInval,
		PeakPrefixEntries: d.peakEntries,
		ShedStreams:       d.shedStreams,
		ShedPackets:       d.shedPackets,
	}
}
