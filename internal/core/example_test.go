package core_test

import (
	"fmt"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/packet"
	"loopscope/internal/trace"
)

// Example demonstrates the three-step algorithm on a hand-written
// trace: one packet crosses the monitored link six times with its TTL
// dropping by 2 — a two-router loop.
func Example() {
	// The looping packet: same header bytes every time, TTL 60, 58,
	// 56, ... (the capture card sees it once per revolution).
	base := packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, Protocol: packet.ProtoUDP,
			Src: packet.MustParseAddr("192.0.2.7"),
			Dst: packet.MustParseAddr("203.0.113.99"),
			ID:  4711,
		},
		Kind:         packet.KindUDP,
		UDP:          packet.UDPHeader{SrcPort: 53, DstPort: 53},
		HasTransport: true,
		PayloadLen:   64,
		PayloadSeed:  12345,
	}
	var recs []trace.Record
	for i := 0; i < 6; i++ {
		p := base
		p.IP.TTL = uint8(60 - 2*i)
		buf := make([]byte, trace.DefaultSnapLen)
		n, _ := p.Serialize(buf, trace.DefaultSnapLen)
		recs = append(recs, trace.Record{
			Time:    time.Second + time.Duration(i)*4*time.Millisecond,
			WireLen: p.WireLen(),
			Data:    buf[:n],
		})
	}

	res := core.DetectRecords(recs, core.DefaultConfig())
	for _, l := range res.Loops {
		s := l.Streams[0]
		fmt.Printf("loop on %v: %d replicas, TTL delta %d, spacing %v\n",
			l.Prefix, s.Count(), s.TTLDelta(), s.MeanSpacing())
	}
	// Output:
	// loop on 203.0.113.0/24: 6 replicas, TTL delta 2, spacing 4ms
}
