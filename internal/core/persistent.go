package core

import "time"

// The paper distinguishes transient loops (routing-protocol
// convergence; resolve on their own) from persistent loops
// (misconfiguration; need operator intervention) and analyses only the
// former, noting persistent loops are rare and require cross-AS
// cooperation to chase. From a single link's trace the observable
// difference is lifetime: a persistent loop's replica streams keep
// arriving for as long as the capture runs.

// PersistenceSplit partitions detected loops by observable lifetime.
type PersistenceSplit struct {
	// Transient loops end well inside the trace.
	Transient []*Loop
	// Persistent loops span (almost) the whole observation window —
	// the capture never saw them heal, so intervention was (or would
	// have been) required.
	Persistent []*Loop
}

// SplitPersistence classifies the result's loops. A loop is persistent
// when the capture never saw it heal: its last replica falls within
// slack of the end of the trace AND it had already been active for at
// least minActive. The observable start of a persistent loop is the
// first captured packet towards its prefix, which for an unpopular
// prefix can be well into the trace — which is why a
// fraction-of-trace-lifetime criterion misclassifies and is not used.
//
// traceEnd is the timestamp of the last record; one merge window is a
// natural slack, and a minute is a conservative minActive (transient
// convergence loops finish in seconds).
func (r *Result) SplitPersistence(traceEnd, slack, minActive time.Duration) PersistenceSplit {
	var out PersistenceSplit
	for _, l := range r.Loops {
		stillActive := traceEnd-l.End <= slack
		longLived := l.Duration() >= minActive
		if stillActive && longLived {
			out.Persistent = append(out.Persistent, l)
		} else {
			out.Transient = append(out.Transient, l)
		}
	}
	return out
}
