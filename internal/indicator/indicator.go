// Package indicator implements the lightweight online loop signal the
// paper suggests in §V-B: "Presence of such streams of ICMP traffic
// might provide a strong indication that a loop is in progress."
//
// When a loop black-holes a prefix, users ping and traceroute the dead
// destinations and routers emit time-exceeded errors, so the ICMP
// packet rate towards the affected /24 surges far above its baseline.
// The indicator watches only ICMP packets — a tiny fraction of the
// link — and raises an alarm when a prefix's windowed ICMP count
// exceeds both an absolute floor and a multiple of its trailing
// baseline. It is cheap enough for inline deployment and needs no
// per-packet state, trading the detector's exactness for immediacy;
// Evaluate quantifies that trade against detector output.
package indicator

import (
	"sort"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/trace"
)

// Config tunes the indicator.
type Config struct {
	// Window is the surge-detection window.
	Window time.Duration
	// Baseline is the trailing period the surge is compared against.
	Baseline time.Duration
	// MinCount is the absolute ICMP packet floor per window before an
	// alarm can fire.
	MinCount int
	// Ratio is the required surge factor over the per-window baseline
	// rate.
	Ratio float64
	// PrefixBits is the aggregation width (default 24).
	PrefixBits int
	// HoldDown extends an alarm while the surge persists; two surges
	// within HoldDown fold into one alarm.
	HoldDown time.Duration
}

// DefaultConfig returns thresholds tuned for backbone-scale traces: a
// 5-second window must carry at least 8 ICMP packets and at least 4x
// the trailing per-window rate.
func DefaultConfig() Config {
	return Config{
		Window:     5 * time.Second,
		Baseline:   60 * time.Second,
		MinCount:   8,
		Ratio:      4,
		PrefixBits: 24,
		HoldDown:   10 * time.Second,
	}
}

// Alarm is one raised loop indication.
type Alarm struct {
	Prefix     routing.Prefix
	Start, End time.Duration
	// Peak is the largest windowed ICMP count observed during the
	// alarm.
	Peak int
}

// Duration returns the alarm length.
func (a Alarm) Duration() time.Duration { return a.End - a.Start }

// prefixWatch is the per-prefix sliding state.
type prefixWatch struct {
	// times holds ICMP arrival times still inside the baseline
	// horizon.
	times []time.Duration
	alarm *Alarm
}

// Detector is the streaming indicator.
type Detector struct {
	cfg    Config
	watch  map[routing.Prefix]*prefixWatch
	alarms []Alarm
	now    time.Duration
	// ICMPSeen counts ICMP records processed (the indicator's entire
	// packet-inspection budget).
	ICMPSeen int
}

// New returns an indicator with the given config.
func New(cfg Config) *Detector {
	if cfg.PrefixBits == 0 {
		cfg.PrefixBits = 24
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Second
	}
	if cfg.Baseline < cfg.Window {
		cfg.Baseline = 12 * cfg.Window
	}
	return &Detector{cfg: cfg, watch: make(map[routing.Prefix]*prefixWatch)}
}

// Observe feeds one trace record. Non-ICMP records only advance the
// clock (O(1)); ICMP records update the destination prefix's window.
func (d *Detector) Observe(rec trace.Record) {
	d.now = rec.Time
	if len(rec.Data) < packet.IPv4HeaderLen || rec.Data[9] != packet.ProtoICMP {
		return
	}
	pkt, err := packet.Decode(rec.Data)
	if err != nil {
		return
	}
	d.ICMPSeen++
	pfx := routing.PrefixOf(pkt.IP.Dst, d.cfg.PrefixBits)
	w := d.watch[pfx]
	if w == nil {
		w = &prefixWatch{}
		d.watch[pfx] = w
	}
	w.times = append(w.times, rec.Time)
	d.update(pfx, w)
}

// update trims horizons and evaluates the surge condition for one
// prefix.
func (d *Detector) update(pfx routing.Prefix, w *prefixWatch) {
	// Trim beyond the baseline horizon.
	cut := d.now - d.cfg.Baseline
	i := sort.Search(len(w.times), func(i int) bool { return w.times[i] >= cut })
	if i > 0 {
		w.times = append(w.times[:0], w.times[i:]...)
	}
	// Windowed count and baseline rate.
	wi := sort.Search(len(w.times), func(i int) bool {
		return w.times[i] >= d.now-d.cfg.Window
	})
	inWindow := len(w.times) - wi
	before := wi // baseline observations preceding the window
	// The baseline span grows with the trace until it reaches the
	// configured horizon, so a popular prefix gets a fair per-window
	// rate estimate within a couple of windows instead of mass false
	// alarms at cold start.
	span := d.now
	if span > d.cfg.Baseline {
		span = d.cfg.Baseline
	}
	baselineWindows := float64(span-d.cfg.Window) / float64(d.cfg.Window)
	if baselineWindows < 1 {
		baselineWindows = 1
	}
	baselinePerWindow := float64(before) / baselineWindows

	warm := d.now >= 2*d.cfg.Window
	surging := warm && inWindow >= d.cfg.MinCount &&
		float64(inWindow) >= d.cfg.Ratio*maxf(baselinePerWindow, 1)

	switch {
	case surging && w.alarm == nil:
		w.alarm = &Alarm{Prefix: pfx, Start: w.times[wi], End: d.now, Peak: inWindow}
	case surging:
		w.alarm.End = d.now
		if inWindow > w.alarm.Peak {
			w.alarm.Peak = inWindow
		}
	case w.alarm != nil && d.now-w.alarm.End > d.cfg.HoldDown:
		d.alarms = append(d.alarms, *w.alarm)
		w.alarm = nil
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Finish closes open alarms and returns all alarms in start order.
func (d *Detector) Finish() []Alarm {
	for _, w := range d.watch {
		if w.alarm != nil {
			d.alarms = append(d.alarms, *w.alarm)
			w.alarm = nil
		}
	}
	sort.Slice(d.alarms, func(i, j int) bool { return d.alarms[i].Start < d.alarms[j].Start })
	return d.alarms
}

// Run processes a whole trace.
func Run(recs []trace.Record, cfg Config) []Alarm {
	d := New(cfg)
	for _, r := range recs {
		d.Observe(r)
	}
	return d.Finish()
}

// Evaluation compares alarms with detector ground truth.
type Evaluation struct {
	// LoopsCovered / Loops: recall over detector loops (a loop counts
	// as covered when a same-prefix alarm overlaps its window, padded
	// by the slack).
	Loops        int
	LoopsCovered int
	// TruePositives / Alarms: precision.
	Alarms        int
	TruePositives int
	// MedianLead is how far the first matching alarm trails the
	// loop's first replica (negative = alarm earlier).
	MedianLeadMs float64
}

// Recall returns covered/loops (1 when there are no loops).
func (e Evaluation) Recall() float64 {
	if e.Loops == 0 {
		return 1
	}
	return float64(e.LoopsCovered) / float64(e.Loops)
}

// Precision returns true positives/alarms (1 when there are none).
func (e Evaluation) Precision() float64 {
	if e.Alarms == 0 {
		return 1
	}
	return float64(e.TruePositives) / float64(e.Alarms)
}

// Evaluate scores alarms against detector loops. slack pads the loop
// windows (ICMP reactions trail the loop onset by the clients' retry
// ladders — users only ping after their connections give up, 15-25 s
// later). matchBits sets the aggregation at which an alarm counts for
// a loop: 24 demands the exact /24; 16 accepts an alarm on a sibling
// /24 of the same /16, appropriate because an outage typically takes
// out a block of prefixes while the ping surge concentrates on the
// most popular of them.
func Evaluate(alarms []Alarm, loops []*core.Loop, slack time.Duration, matchBits int) Evaluation {
	ev := Evaluation{Loops: len(loops), Alarms: len(alarms)}
	matched := make([]bool, len(alarms))
	var leads []float64
	for _, l := range loops {
		covered := false
		lp := routing.NewPrefix(l.Prefix.Addr, matchBits)
		for i, a := range alarms {
			if routing.NewPrefix(a.Prefix.Addr, matchBits) != lp {
				continue
			}
			if a.Start <= l.End+slack && l.Start-slack <= a.End {
				if !covered {
					leads = append(leads, float64(a.Start-l.Start)/float64(time.Millisecond))
				}
				covered = true
				matched[i] = true
			}
		}
		if covered {
			ev.LoopsCovered++
		}
	}
	for _, m := range matched {
		if m {
			ev.TruePositives++
		}
	}
	if len(leads) > 0 {
		sort.Float64s(leads)
		ev.MedianLeadMs = leads[len(leads)/2]
	}
	return ev
}
