package indicator_test

import (
	"testing"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/events"
	"loopscope/internal/indicator"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/scenario"
	"loopscope/internal/trace"
)

// icmpRec builds a single ICMP echo record.
func icmpRec(t *testing.T, at time.Duration, dst string, id uint16) trace.Record {
	t.Helper()
	p := packet.Packet{
		IP: packet.IPv4Header{
			Version: 4, IHL: 5, TTL: 60, Protocol: packet.ProtoICMP,
			Src: packet.MustParseAddr("192.0.2.9"),
			Dst: packet.MustParseAddr(dst), ID: id,
		},
		Kind:         packet.KindICMP,
		ICMP:         packet.ICMPHeader{Type: packet.ICMPEchoRequest, Rest: uint32(id)},
		HasTransport: true,
		PayloadLen:   56, PayloadSeed: uint64(id),
	}
	buf := make([]byte, 40)
	n, err := p.Serialize(buf, 40)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Record{Time: at, WireLen: p.WireLen(), Data: buf[:n]}
}

func TestSurgeRaisesAlarm(t *testing.T) {
	var recs []trace.Record
	// Baseline: one ping per 10 s for 2 minutes.
	for i := 0; i < 12; i++ {
		recs = append(recs, icmpRec(t, time.Duration(i)*10*time.Second, "203.0.113.7", uint16(i+1)))
	}
	// Surge: 30 pings in 3 s.
	for i := 0; i < 30; i++ {
		recs = append(recs, icmpRec(t, 2*time.Minute+time.Duration(i)*100*time.Millisecond,
			"203.0.113.7", uint16(100+i)))
	}
	// Quiet tail so the alarm closes.
	for i := 0; i < 10; i++ {
		recs = append(recs, icmpRec(t, 3*time.Minute+time.Duration(i)*10*time.Second,
			"198.51.100.1", uint16(500+i)))
	}

	alarms := indicator.Run(recs, indicator.DefaultConfig())
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (%+v)", len(alarms), alarms)
	}
	a := alarms[0]
	if a.Prefix != routing.MustParsePrefix("203.0.113.0/24") {
		t.Errorf("alarm prefix %v", a.Prefix)
	}
	if a.Start < 119*time.Second || a.Start > 122*time.Second {
		t.Errorf("alarm start %v, want at the surge onset", a.Start)
	}
	if a.Peak < 8 {
		t.Errorf("alarm peak %d", a.Peak)
	}
}

func TestBaselineTrafficDoesNotAlarm(t *testing.T) {
	var recs []trace.Record
	// Steady 1 ping/second to one prefix: high absolute count but no
	// surge over baseline.
	for i := 0; i < 300; i++ {
		recs = append(recs, icmpRec(t, time.Duration(i)*time.Second, "203.0.113.7", uint16(i+1)))
	}
	alarms := indicator.Run(recs, indicator.DefaultConfig())
	if len(alarms) != 0 {
		t.Fatalf("steady traffic raised %d alarms: %+v", len(alarms), alarms)
	}
}

func TestColdStartNeedsAbsoluteFloor(t *testing.T) {
	// A handful of pings to a fresh prefix must not alarm (below
	// MinCount) even though the baseline is empty.
	var recs []trace.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, icmpRec(t, time.Duration(i)*200*time.Millisecond, "203.0.113.7", uint16(i+1)))
	}
	alarms := indicator.Run(recs, indicator.DefaultConfig())
	if len(alarms) != 0 {
		t.Fatalf("cold start alarmed: %+v", alarms)
	}
}

// TestIndicatorAgainstDetector runs the indicator on a simulated
// backbone and scores it against the exact detector — the quantified
// version of the paper's "strong indication" remark.
func TestIndicatorAgainstDetector(t *testing.T) {
	spec := scenario.Spec{
		Name:             "ind-bb",
		Seed:             11,
		Duration:         2 * time.Minute,
		PacketsPerSecond: 800,
		StablePrefixes:   16,
		Pockets: []scenario.PocketSpec{
			{Delta: 2, Prefixes: 3, Failures: 2, RepairAfter: 30 * time.Second},
			{Delta: 2, Prefixes: 3, Failures: 1, RepairAfter: 30 * time.Second},
			{Delta: 3, Prefixes: 3, Failures: 1, RepairAfter: 30 * time.Second},
		},
		PingOnAbort: 0.9, // unlucky users hammer ping
	}
	bb := scenario.Build(spec)
	bb.Run()
	recs := bb.Records()

	res := core.DetectRecords(recs, core.DefaultConfig())
	if len(res.Loops) == 0 {
		t.Fatal("no loops to evaluate against")
	}
	ind := indicator.New(indicator.DefaultConfig())
	for _, r := range recs {
		ind.Observe(r)
	}
	alarms := ind.Finish()
	// The slack must cover client behaviour: a flow only aborts (and
	// its user only starts pinging) after the full TCP retry ladder,
	// 15-25 s after the loop swallowed its packets.
	// Match at /16: an outage takes out the whole pocket block while
	// the ping surge lands on its most popular /24.
	ev := indicator.Evaluate(alarms, res.Loops, 30*time.Second, 16)

	// Users also ping during the blackhole that follows a loop (the
	// primary stays down until the repair), so judge precision
	// against "trouble windows": detected loops plus link outages
	// from the journal.
	type window struct{ lo, hi time.Duration }
	var trouble []window
	for _, l := range res.Loops {
		trouble = append(trouble, window{l.Start - 15*time.Second, l.End + 30*time.Second})
	}
	var openFail time.Duration = -1
	for _, e := range bb.Net.Journal.All() {
		switch e.Kind {
		case events.LinkFailed:
			openFail = e.At
		case events.LinkRepaired:
			if openFail >= 0 {
				trouble = append(trouble, window{openFail, e.At + 30*time.Second})
				openFail = -1
			}
		}
	}
	troubleTP := 0
	for _, a := range alarms {
		hit := false
		for _, w := range trouble {
			if a.Start <= w.hi && w.lo <= a.End {
				troubleTP++
				hit = true
				break
			}
		}
		if !hit {
			t.Logf("false alarm: %v %v..%v peak %d", a.Prefix, a.Start, a.End, a.Peak)
		}
	}
	troublePrecision := float64(troubleTP) / float64(max(len(alarms), 1))
	t.Logf("loops=%d alarms=%d recall=%.2f loop-precision=%.2f trouble-precision=%.2f icmpSeen=%d lead=%.0fms",
		ev.Loops, ev.Alarms, ev.Recall(), ev.Precision(), troublePrecision, ind.ICMPSeen, ev.MedianLeadMs)

	if ev.Alarms == 0 {
		t.Fatal("indicator raised no alarms despite loops with heavy ping retries")
	}
	if troublePrecision < 0.5 {
		t.Errorf("trouble precision %.2f below 0.5 — alarms outside any outage", troublePrecision)
	}
	if ev.Recall() < 0.5 {
		t.Errorf("recall %.2f below 0.5 — the signal the paper describes is missing", ev.Recall())
	}
	// The indicator must inspect only the ICMP sliver of the link.
	if ind.ICMPSeen*10 > len(recs) {
		t.Errorf("indicator inspected %d of %d records; should be a small fraction",
			ind.ICMPSeen, len(recs))
	}
}
