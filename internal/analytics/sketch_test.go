package analytics

import (
	"math"
	"math/rand"
	"testing"

	"loopscope/internal/stats"
)

// relErr returns |got-want| / want (want > 0).
func relErr(got, want int64) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestSketchQuantileErrorBound checks the headline guarantee against
// the exact CDF from internal/stats: every reported quantile is within
// SketchAlpha relative error of the true one, across several
// distribution shapes.
func TestSketchQuantileErrorBound(t *testing.T) {
	// Each shape draws from its own seeded stream so the sample sets
	// are deterministic regardless of subtest order.
	shapes := map[string]func(rng *rand.Rand) int64{
		"uniform":   func(rng *rand.Rand) int64 { return 1 + rng.Int63n(1_000_000) },
		"lognormal": func(rng *rand.Rand) int64 { return int64(math.Exp(rng.NormFloat64()*2+10)) + 1 },
		"heavytail": func(rng *rand.Rand) int64 { return int64(1 / (rng.Float64() + 1e-9)) },
		"constant":  func(rng *rand.Rand) int64 { return 42_000 },
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var s Sketch
			cdf := stats.NewCDF()
			for i := 0; i < 20_000; i++ {
				v := gen(rng)
				s.Add(v)
				cdf.Add(float64(v))
			}
			for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
				got := s.Quantile(q)
				want := int64(cdf.Quantile(q))
				if want == 0 {
					continue
				}
				// The α guarantee is on real values; reporting integer
				// bucket representatives can add up to one unit of
				// rounding on top (visible only for tiny values, where
				// adjacent integers are >α apart).
				if re := relErr(got, want); re > SketchAlpha && absDiff(got, want) > 1 {
					t.Errorf("q=%v: sketch %d vs exact %d, rel err %.4f > %v", q, got, want, re, SketchAlpha)
				}
			}
			if s.Min != int64(cdf.Min()) || s.Max != int64(cdf.Max()) {
				t.Errorf("min/max: sketch (%d,%d) vs exact (%v,%v)", s.Min, s.Max, cdf.Min(), cdf.Max())
			}
			if re := math.Abs(s.Mean()-cdf.Mean()) / cdf.Mean(); re > 1e-9 {
				t.Errorf("mean drifted: %v vs %v", s.Mean(), cdf.Mean())
			}
		})
	}
}

// TestSketchMergeAssociativeCommutative is the property the whole
// window design rests on: any merge tree over the same observations
// yields the identical sketch, byte for byte.
func TestSketchMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([][]int64, 5)
	for p := range parts {
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			parts[p] = append(parts[p], rng.Int63n(1_000_000_000)-5) // includes <=0
		}
	}
	build := func(vals []int64) *Sketch {
		var s Sketch
		for _, v := range vals {
			s.Add(v)
		}
		return &s
	}
	sketchEqual := func(a, b *Sketch) bool {
		if a.Off != b.Off || a.Zeros != b.Zeros || a.N != b.N ||
			a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max ||
			len(a.Bins) != len(b.Bins) {
			return false
		}
		for i := range a.Bins {
			if a.Bins[i] != b.Bins[i] {
				return false
			}
		}
		return true
	}

	// Reference: single sketch over the concatenation.
	var all []int64
	for _, p := range parts {
		all = append(all, p...)
	}
	ref := build(all)

	// Left fold, right fold, pairwise tree, and a shuffled order must
	// all equal the reference exactly.
	orders := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	for _, order := range orders {
		var acc Sketch
		for _, idx := range order {
			acc.Merge(build(parts[idx]))
		}
		if !sketchEqual(&acc, ref) {
			t.Fatalf("fold order %v diverged from direct build", order)
		}
	}
	// Balanced tree: ((0+1)+(2+3))+4.
	l := build(parts[0])
	l.Merge(build(parts[1]))
	r := build(parts[2])
	r.Merge(build(parts[3]))
	l.Merge(r)
	l.Merge(build(parts[4]))
	if !sketchEqual(l, ref) {
		t.Fatal("balanced merge tree diverged from direct build")
	}
	// Merging an empty sketch is the identity.
	var empty Sketch
	before := *ref
	ref.Merge(&empty)
	if !sketchEqual(ref, &before) {
		t.Fatal("merging empty sketch changed state")
	}
}

func TestSketchEdgeCases(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch quantile = %d, want 0", got)
	}
	if s.Buckets() != nil {
		t.Fatal("empty sketch has buckets")
	}
	s.Add(0)
	s.Add(-3)
	s.Add(math.MaxInt64)
	if s.N != 3 || s.Zeros != 2 {
		t.Fatalf("N=%d zeros=%d, want 3, 2", s.N, s.Zeros)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("median of {-3,0,max} = %d, want 0", got)
	}
	if got := s.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("p100 clamps to exact max, got %d", got)
	}
	if s.Min != -3 || s.Max != math.MaxInt64 {
		t.Fatalf("min/max (%d, %d)", s.Min, s.Max)
	}
	if err := s.validate(); err != nil {
		t.Fatalf("valid sketch rejected: %v", err)
	}
	bad := s
	bad.N++
	if bad.validate() == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestSketchBuckets(t *testing.T) {
	var s Sketch
	vals := []int64{0, 5, 5, 1000, 999999}
	for _, v := range vals {
		s.Add(v)
	}
	bs := s.Buckets()
	if len(bs) == 0 || bs[0].Lo != 0 || bs[0].Hi != 0 || bs[0].Count != 1 {
		t.Fatalf("zero bucket wrong: %+v", bs)
	}
	var total uint64
	prevHi := int64(-1)
	for _, b := range bs {
		if b.Lo > b.Hi {
			t.Fatalf("inverted bucket %+v", b)
		}
		if b.Lo <= prevHi {
			t.Fatalf("buckets overlap: %+v after hi=%d", b, prevHi)
		}
		prevHi = b.Hi
		total += b.Count
	}
	if total != s.N {
		t.Fatalf("bucket counts sum %d, want %d", total, s.N)
	}
}

func TestIntHistExact(t *testing.T) {
	var h IntHist
	cdf := stats.NewCDF()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := rng.Intn(40)
		h.Add(k)
		cdf.Add(float64(k))
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 1} {
		if got, want := h.Quantile(q), int64(cdf.Quantile(q)); got != want {
			t.Errorf("q=%v: %d, want exact %d", q, got, want)
		}
	}
	min, max := h.MinMax()
	if min != int64(cdf.Min()) || max != int64(cdf.Max()) {
		t.Errorf("minmax (%d,%d) vs (%v,%v)", min, max, cdf.Min(), cdf.Max())
	}
	if math.Abs(h.Mean()-cdf.Mean()) > 1e-9 {
		t.Errorf("mean %v vs %v", h.Mean(), cdf.Mean())
	}

	// Merge in halves equals direct build.
	var a, b, m IntHist
	for i := 0; i < 1000; i++ {
		k := rng.Intn(20)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
		m.Add(k)
	}
	a.Merge(&b)
	if a.N != m.N || len(a.Counts) != len(m.Counts) {
		t.Fatal("merged halves diverge from direct build")
	}
	for k, c := range m.Counts {
		if a.Counts[k] != c {
			t.Fatalf("key %d: %d vs %d", k, a.Counts[k], c)
		}
	}

	// Clamping.
	var c IntHist
	c.Add(-5)
	c.Add(999999)
	if c.Counts[0] != 1 || c.Counts[intHistMaxKey] != 1 {
		t.Fatalf("clamp failed: %+v", c.Counts)
	}
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := NewTopK(3)
	counts := map[string]int{"a": 100, "b": 50, "c": 30, "d": 2, "e": 1}
	// Interleave deterministically.
	for i := 0; i < 100; i++ {
		for key, n := range counts {
			if i < n {
				tk.Add(key)
			}
		}
	}
	top := tk.Top()
	if len(top) != 3 {
		t.Fatalf("len=%d, want 3", len(top))
	}
	if top[0].Key != "a" || top[1].Key != "b" || top[2].Key != "c" {
		t.Fatalf("top keys %v", top)
	}
	// Space-saving guarantee: Count-Err <= true count <= Count.
	for _, it := range top {
		want := uint64(counts[it.Key])
		if it.Count < want || it.Count-it.Err > want {
			t.Errorf("%s: count %d err %d vs true %d violates bound", it.Key, it.Count, it.Err, want)
		}
	}
	if err := tk.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopKMerge(t *testing.T) {
	a, b := NewTopK(2), NewTopK(2)
	a.AddN("x", 10)
	a.AddN("y", 5)
	b.AddN("x", 7)
	b.AddN("z", 6)
	a.Merge(b)
	top := a.Top()
	if len(top) != 2 || top[0].Key != "x" || top[0].Count != 17 {
		t.Fatalf("merged top %v", top)
	}
	// z (6) beat y (5); survivors' error absorbs the dropped weight.
	if top[1].Key != "z" || top[1].Err < 5 {
		t.Fatalf("expected z with err >= 5 (dropped y), got %v", top[1])
	}
	if err := a.validate(); err != nil {
		t.Fatal(err)
	}
	// Merge with nil/empty is identity.
	before := a.Top()
	a.Merge(nil)
	a.Merge(NewTopK(2))
	after := a.Top()
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatal("nil/empty merge changed state")
	}
}
