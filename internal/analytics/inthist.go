package analytics

import (
	"errors"
	"sort"
)

// intHistMaxKey clamps IntHist keys: the discrete distributions it
// backs (TTL delta, streams per loop) live well below it, and the
// clamp keeps a hostile snapshot or a pathological loop from growing
// the key space without bound.
const intHistMaxKey = 4096

// IntHist is an exact integer-keyed histogram for small discrete
// distributions. Unlike Sketch it has no error bound at all: merging
// is key-wise addition, quantiles are exact. The zero value is ready
// for Add.
type IntHist struct {
	Counts map[int]uint64 `json:"counts,omitempty"`
	N      uint64         `json:"n"`
}

// Add records one observation; keys clamp into [0, intHistMaxKey].
func (h *IntHist) Add(k int) {
	if k < 0 {
		k = 0
	}
	if k > intHistMaxKey {
		k = intHistMaxKey
	}
	if h.Counts == nil {
		h.Counts = make(map[int]uint64)
	}
	h.Counts[k]++
	h.N++
}

// Merge folds other into h (associative and commutative).
func (h *IntHist) Merge(other *IntHist) {
	if other == nil || other.N == 0 {
		return
	}
	if h.Counts == nil {
		h.Counts = make(map[int]uint64, len(other.Counts))
	}
	for k, c := range other.Counts {
		h.Counts[k] += c
	}
	h.N += other.N
}

// Count returns the number of observations.
func (h *IntHist) Count() uint64 { return h.N }

// keys returns the populated keys in increasing order.
func (h *IntHist) keys() []int {
	out := make([]int, 0, len(h.Counts))
	for k := range h.Counts {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Quantile returns the exact q-quantile (smallest key k with
// P(X <= k) >= q), or 0 when empty.
func (h *IntHist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-12
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.N))
	if float64(rank) < q*float64(h.N) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	keys := h.keys()
	for _, k := range keys {
		cum += h.Counts[k]
		if cum >= rank {
			return int64(k)
		}
	}
	return int64(keys[len(keys)-1])
}

// Mean returns the arithmetic mean, or 0 when empty.
func (h *IntHist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.Counts {
		sum += float64(k) * float64(c)
	}
	return sum / float64(h.N)
}

// MinMax returns the smallest and largest populated keys (0, 0 when
// empty).
func (h *IntHist) MinMax() (int64, int64) {
	keys := h.keys()
	if len(keys) == 0 {
		return 0, 0
	}
	return int64(keys[0]), int64(keys[len(keys)-1])
}

// Buckets returns one bucket per populated key, in key order.
func (h *IntHist) Buckets() []Bucket {
	var out []Bucket
	for _, k := range h.keys() {
		out = append(out, Bucket{Lo: int64(k), Hi: int64(k), Count: h.Counts[k]})
	}
	return out
}

// validate rejects impossible images from a snapshot.
func (h *IntHist) validate() error {
	var sum uint64
	for k, c := range h.Counts {
		if k < 0 || k > intHistMaxKey {
			return errors.New("analytics: int histogram key out of range")
		}
		sum += c
	}
	if sum != h.N {
		return errors.New("analytics: int histogram counts disagree with N")
	}
	return nil
}
