package analytics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Metric names the stats API accepts. Sketch-backed metrics answer
// quantiles within SketchAlpha relative error; IntHist-backed metrics
// are exact.
const (
	MetricDuration    = "duration"     // loop duration, ns (Sketch)
	MetricTTLDelta    = "ttl_delta"    // dominant TTL decrement (IntHist, exact)
	MetricStreams     = "streams"      // replica streams per loop (IntHist, exact)
	MetricReplicas    = "replicas"     // replica packets per loop (Sketch)
	MetricEscapeDelay = "escape_delay" // time an escaped stream was trapped, ns (Sketch)
)

// Metrics lists every metric name, in presentation order.
var Metrics = []string{MetricDuration, MetricTTLDelta, MetricStreams, MetricReplicas, MetricEscapeDelay}

// LoopObs is one finalized loop, reduced to what the analytics layer
// records. Both feeding paths build it: the daemon from a published
// serve event (ID set, so crash-replay duplicates dedup), offline
// loopdetect from a core.Result (no IDs needed — a batch run has no
// duplicates).
type LoopObs struct {
	// ID deduplicates at-least-once redelivery; empty skips dedup.
	ID string
	// Prefix feeds the per-prefix top-K.
	Prefix string
	// DurationNs is the loop's observable lifetime.
	DurationNs int64
	// TTLDelta is the dominant TTL decrement (loop length in routers).
	TTLDelta int
	// Streams is the number of merged replica streams.
	Streams int
	// Replicas is the total replica packets across the loop's streams.
	Replicas int
	// EscapeDelaysNs holds, per escaped stream, how long the loop held
	// the packet before it got out.
	EscapeDelaysNs []int64
}

// tier is one time-partition granularity: ring of `keep` segments of
// `span` each.
type tier struct {
	span time.Duration
	keep int
}

// tiers are the window granularities, finest first: two hours of
// minutes, two days of hours, two weeks of days. Queries resolve on
// the finest tier whose retention covers the asked-for window.
var tiers = []tier{
	{time.Minute, 120},
	{time.Hour, 48},
	{24 * time.Hour, 14},
}

// MaxWindow is the largest queryable window; longer horizons use the
// cumulative "all" view.
const MaxWindow = 14 * 24 * time.Hour

// topKCap bounds the per-prefix heavy-hitter summaries. 64 prefixes
// per window segment is far past what a statusz table or a NOC
// dashboard renders.
const topKCap = 64

// metricSet is one window's worth of sketches: every metric plus the
// prefix top-K. It is the unit of merging.
type metricSet struct {
	Duration    Sketch  `json:"duration"`
	TTLDelta    IntHist `json:"ttlDelta"`
	Streams     IntHist `json:"streams"`
	Replicas    Sketch  `json:"replicas"`
	EscapeDelay Sketch  `json:"escapeDelay"`
	Prefixes    *TopK   `json:"prefixes,omitempty"`
	Loops       uint64  `json:"loops"`
}

// record folds one loop observation in.
func (m *metricSet) record(o LoopObs) {
	m.Loops++
	m.Duration.Add(o.DurationNs)
	m.TTLDelta.Add(o.TTLDelta)
	m.Streams.Add(o.Streams)
	m.Replicas.Add(int64(o.Replicas))
	for _, d := range o.EscapeDelaysNs {
		m.EscapeDelay.Add(d)
	}
	if o.Prefix != "" {
		if m.Prefixes == nil {
			m.Prefixes = NewTopK(topKCap)
		}
		m.Prefixes.Add(o.Prefix)
	}
}

// merge folds other into m.
func (m *metricSet) merge(other *metricSet) {
	if other == nil {
		return
	}
	m.Loops += other.Loops
	m.Duration.Merge(&other.Duration)
	m.TTLDelta.Merge(&other.TTLDelta)
	m.Streams.Merge(&other.Streams)
	m.Replicas.Merge(&other.Replicas)
	m.EscapeDelay.Merge(&other.EscapeDelay)
	if other.Prefixes != nil {
		if m.Prefixes == nil {
			m.Prefixes = NewTopK(topKCap)
		}
		m.Prefixes.Merge(other.Prefixes)
	}
}

// validate checks a decoded metricSet.
func (m *metricSet) validate() error {
	for _, v := range []interface{ validate() error }{
		&m.Duration, &m.TTLDelta, &m.Streams, &m.Replicas, &m.EscapeDelay,
	} {
		if err := v.validate(); err != nil {
			return err
		}
	}
	if m.Prefixes != nil {
		return m.Prefixes.validate()
	}
	return nil
}

// segment is one time partition of one tier: observations whose ingest
// time fell in [Start, Start+span).
type segment struct {
	// StartUnix is the segment's aligned start, in unix seconds.
	StartUnix int64      `json:"start"`
	MS        *metricSet `json:"ms"`
}

// sourceWindows is one source's full window state: per-tier segment
// rings plus the cumulative view.
type sourceWindows struct {
	Tiers [][]segment `json:"tiers"`
	All   *metricSet  `json:"all"`
}

func newSourceWindows() *sourceWindows {
	return &sourceWindows{Tiers: make([][]segment, len(tiers)), All: &metricSet{}}
}

// seenCap bounds the Collector's duplicate-suppression ring. It must
// exceed the number of events a crash window can replay (events since
// the last snapshot, or one dir segment's worth); 64k IDs is hours of
// heavy looping and ~4 MB, persisted with the snapshot.
const seenCap = 65536

// Options configures a Collector.
type Options struct {
	// Now supplies the ingest clock; nil uses time.Now. Tests pin it.
	Now func() time.Time
	// OnIngest and OnDedup, when non-nil, fire once per recorded and
	// per suppressed observation — the daemon bridges them into its
	// metrics registry without this package importing it.
	OnIngest func()
	OnDedup  func()
}

// Collector is the streaming analytics state: per-source window tiers
// of mergeable sketches, a cumulative view, and a bounded
// recently-seen event-ID ring that makes ingestion idempotent across
// the daemon's at-least-once redelivery. Safe for concurrent use.
type Collector struct {
	mu       sync.Mutex
	now      func() time.Time
	onIngest func()
	onDedup  func()
	sources  map[string]*sourceWindows
	seen     map[string]struct{}
	seenFIFO []string
	ingested uint64
	deduped  uint64
}

// NewCollector returns an empty Collector.
func NewCollector(opts Options) *Collector {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Collector{
		now:      now,
		onIngest: opts.OnIngest,
		onDedup:  opts.OnDedup,
		sources:  make(map[string]*sourceWindows),
		seen:     make(map[string]struct{}),
	}
}

// RecordLoop ingests one finalized loop for source. A LoopObs whose ID
// was recently ingested is dropped (counted), which is what keeps
// checkpoint-resume replays and dir-source re-derivations from double
// counting. Nil-safe: a nil Collector ignores the call, so callers
// can leave analytics unwired without a branch.
func (c *Collector) RecordLoop(source string, o LoopObs) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if o.ID != "" {
		if _, dup := c.seen[o.ID]; dup {
			c.deduped++
			if c.onDedup != nil {
				c.onDedup()
			}
			return
		}
		c.seen[o.ID] = struct{}{}
		c.seenFIFO = append(c.seenFIFO, o.ID)
		if len(c.seenFIFO) > seenCap {
			delete(c.seen, c.seenFIFO[0])
			c.seenFIFO = c.seenFIFO[1:]
		}
	}
	c.ingested++
	if c.onIngest != nil {
		c.onIngest()
	}
	sw := c.sources[source]
	if sw == nil {
		sw = newSourceWindows()
		c.sources[source] = sw
	}
	nowUnix := c.now().Unix()
	for ti, t := range tiers {
		spanSec := int64(t.span / time.Second)
		start := nowUnix - nowUnix%spanSec
		segs := sw.Tiers[ti]
		if n := len(segs); n == 0 || segs[n-1].StartUnix != start {
			segs = append(segs, segment{StartUnix: start, MS: &metricSet{}})
			if len(segs) > t.keep {
				segs = segs[len(segs)-t.keep:]
			}
			sw.Tiers[ti] = segs
		}
		sw.Tiers[ti][len(sw.Tiers[ti])-1].MS.record(o)
	}
	sw.All.record(o)
}

// Counts reports how many loops were ingested and how many were
// suppressed as duplicates.
func (c *Collector) Counts() (ingested, deduped uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ingested, c.deduped
}

// Sources returns the source names with any recorded state, sorted.
func (c *Collector) Sources() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.sources))
	for name := range c.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseWindow parses a stats window parameter: "all" (or empty) means
// the cumulative view; otherwise a Go duration between one minute and
// MaxWindow.
func ParseWindow(s string) (time.Duration, error) {
	if s == "" || s == "all" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad window %q: want a duration like 5m, 1h, 24h, or \"all\"", s)
	}
	if d < time.Minute || d > MaxWindow {
		return 0, fmt.Errorf("window %q out of range: want 1m..%s or \"all\"", s, MaxWindow)
	}
	return d, nil
}

// Query describes one stats request.
type Query struct {
	// Window is the lookback horizon; 0 means cumulative ("all").
	Window time.Duration
	// Source restricts to one source; empty merges all sources.
	Source string
	// Metric restricts to one metric; empty returns all.
	Metric string
}

// MetricStats is one metric's distribution over the queried window.
type MetricStats struct {
	Metric string `json:"metric"`
	// Kind is "sketch" (quantiles within the relative error bound) or
	// "exact" (integer histogram).
	Kind      string           `json:"kind"`
	Count     uint64           `json:"count"`
	Mean      float64          `json:"mean"`
	Min       int64            `json:"min"`
	Max       int64            `json:"max"`
	Quantiles map[string]int64 `json:"quantiles"`
	Buckets   []Bucket         `json:"buckets"`
}

// Stats is a stats query's result.
type Stats struct {
	Window string `json:"window"`
	Source string `json:"source,omitempty"`
	// Loops is the number of loops the window holds.
	Loops uint64 `json:"loops"`
	// ErrorBound is the sketch metrics' relative quantile error.
	ErrorBound  float64                `json:"errorBound"`
	Metrics     map[string]MetricStats `json:"metrics"`
	TopPrefixes []TopKItem             `json:"topPrefixes"`
}

// quantilePoints are the quantiles every stats row reports.
var quantilePoints = []struct {
	name string
	q    float64
}{{"p50", 0.5}, {"p90", 0.9}, {"p99", 0.99}}

// ErrUnknownMetric reports a metric name outside Metrics.
type ErrUnknownMetric struct{ Name string }

func (e *ErrUnknownMetric) Error() string {
	return fmt.Sprintf("unknown metric %q: want one of %v", e.Name, Metrics)
}

// ErrUnknownSource reports a source with no analytics state.
type ErrUnknownSource struct{ Name string }

func (e *ErrUnknownSource) Error() string {
	return fmt.Sprintf("unknown source %q", e.Name)
}

// Query answers one stats request by merging the relevant window
// segments (and sources) into a scratch metricSet — the stored
// segments are never mutated by reads.
func (c *Collector) Query(q Query) (*Stats, error) {
	if c == nil {
		return nil, fmt.Errorf("analytics disabled")
	}
	if q.Metric != "" && !validMetric(q.Metric) {
		return nil, &ErrUnknownMetric{Name: q.Metric}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var sws []*sourceWindows
	if q.Source != "" {
		sw := c.sources[q.Source]
		if sw == nil {
			return nil, &ErrUnknownSource{Name: q.Source}
		}
		sws = []*sourceWindows{sw}
	} else {
		for _, name := range c.sourceNamesLocked() {
			sws = append(sws, c.sources[name])
		}
	}

	merged := &metricSet{}
	windowName := "all"
	if q.Window <= 0 {
		for _, sw := range sws {
			merged.merge(sw.All)
		}
	} else {
		windowName = q.Window.String()
		ti := tierFor(q.Window)
		cutoff := c.now().Add(-q.Window).Unix()
		spanSec := int64(tiers[ti].span / time.Second)
		for _, sw := range sws {
			for i := range sw.Tiers[ti] {
				seg := &sw.Tiers[ti][i]
				// A segment overlaps the window when it ends after the
				// cutoff; boundary segments are included whole (windows
				// round outward to segment edges — documented).
				if seg.StartUnix+spanSec > cutoff {
					merged.merge(seg.MS)
				}
			}
		}
	}

	st := &Stats{
		Window:      windowName,
		Source:      q.Source,
		Loops:       merged.Loops,
		ErrorBound:  SketchAlpha,
		Metrics:     make(map[string]MetricStats),
		TopPrefixes: []TopKItem{},
	}
	if merged.Prefixes != nil {
		st.TopPrefixes = merged.Prefixes.Top()
	}
	for _, name := range Metrics {
		if q.Metric != "" && q.Metric != name {
			continue
		}
		st.Metrics[name] = metricStats(name, merged)
	}
	return st, nil
}

// EmptyStats returns the stats document of a source with no
// observations: every metric present with zero counts, correct kinds,
// and empty buckets — the shape the stats API serves before a
// source's first loop.
func EmptyStats(window, source string) *Stats {
	if window == "" {
		window = "all"
	}
	st := &Stats{
		Window:      window,
		Source:      source,
		ErrorBound:  SketchAlpha,
		Metrics:     make(map[string]MetricStats),
		TopPrefixes: []TopKItem{},
	}
	empty := &metricSet{}
	for _, name := range Metrics {
		st.Metrics[name] = metricStats(name, empty)
	}
	return st
}

// sourceNamesLocked returns source names sorted, under c.mu — sorted
// iteration keeps merges deterministic (they would be correct in any
// order; determinism makes tests and snapshots byte-stable).
func (c *Collector) sourceNamesLocked() []string {
	names := make([]string, 0, len(c.sources))
	for name := range c.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// tierFor picks the finest tier whose retention covers the window.
func tierFor(w time.Duration) int {
	for i, t := range tiers {
		if w <= t.span*time.Duration(t.keep) {
			return i
		}
	}
	return len(tiers) - 1
}

// validMetric reports whether name is a known metric.
func validMetric(name string) bool {
	for _, m := range Metrics {
		if m == name {
			return true
		}
	}
	return false
}

// metricStats renders one metric of a merged set.
func metricStats(name string, m *metricSet) MetricStats {
	var (
		kind       string
		count      uint64
		mean       float64
		min, max   int64
		quantileAt func(float64) int64
		buckets    []Bucket
	)
	switch name {
	case MetricDuration, MetricReplicas, MetricEscapeDelay:
		var s *Sketch
		switch name {
		case MetricDuration:
			s = &m.Duration
		case MetricReplicas:
			s = &m.Replicas
		default:
			s = &m.EscapeDelay
		}
		kind, count, mean = "sketch", s.Count(), s.Mean()
		if count > 0 {
			min, max = s.Min, s.Max
		}
		quantileAt, buckets = s.Quantile, s.Buckets()
	case MetricTTLDelta, MetricStreams:
		h := &m.TTLDelta
		if name == MetricStreams {
			h = &m.Streams
		}
		kind, count, mean = "exact", h.Count(), h.Mean()
		min, max = h.MinMax()
		quantileAt, buckets = h.Quantile, h.Buckets()
	}
	ms := MetricStats{
		Metric: name, Kind: kind, Count: count, Mean: mean,
		Min: min, Max: max,
		Quantiles: make(map[string]int64, len(quantilePoints)),
		Buckets:   buckets,
	}
	if ms.Buckets == nil {
		ms.Buckets = []Bucket{}
	}
	for _, qp := range quantilePoints {
		if count > 0 {
			ms.Quantiles[qp.name] = quantileAt(qp.q)
		} else {
			ms.Quantiles[qp.name] = 0
		}
	}
	return ms
}
