// Package analytics is loopscope's streaming analytics subsystem: the
// paper's offline distributions (loop duration, TTL delta, replica and
// stream counts per loop, escape delay — Figures 2–9) computed
// incrementally, in bounded memory, while the daemon serves days of
// traffic.
//
// Everything here is mergeable and serializable by construction:
//
//   - Sketch: a fixed-bucket log-scale quantile sketch (DDSketch
//     family) with a guaranteed relative error bound. Merging is
//     element-wise bucket addition, so it is exactly associative and
//     commutative — merge order and window tiling can never change a
//     quantile answer, which is what lets per-window segments roll up
//     into hours and days, and per-daemon sketches roll up into a
//     fleet view, without drift.
//   - IntHist: an exact integer-keyed histogram for the small discrete
//     distributions (TTL delta, streams per loop).
//   - TopK: a space-saving heavy-hitter counter for per-prefix loop
//     counts, mergeable with a documented error bound.
//
// The Collector stacks these into time-partitioned window tiers and is
// the one code path both the daemon's publish pipeline and offline
// `loopdetect -json` feed, so online and offline answers agree within
// the sketch bounds.
//
// The package is dependency-free (stdlib only), like internal/obs.
package analytics

import (
	"errors"
	"fmt"
	"math"
)

// SketchAlpha is the Sketch's guaranteed relative error bound: any
// quantile estimate q̂ satisfies |q̂ - q| <= SketchAlpha * q for the
// true quantile value q within the representable range. It is a
// compile-time constant so every sketch in the system (and therefore
// every merge) uses identical bucket boundaries.
const SketchAlpha = 0.01

// sketchGammaLn is ln((1+α)/(1-α)), the log-scale bucket width.
var sketchGammaLn = math.Log((1 + SketchAlpha) / (1 - SketchAlpha))

// sketchMaxIndex bounds the bucket index range: values above
// gamma^sketchMaxIndex (≈ 4.9e18, comfortably past int64 nanosecond
// spans) clamp into the last bucket. With α = 1% that is ~2150
// possible buckets; storage is sparse (a contiguous slice spanning
// only the observed index range), so an idle window segment costs a
// few words, not the full range.
var sketchMaxIndex = sketchIndex(math.MaxInt64)

// sketchIndex maps a positive value to its log-scale bucket index:
// the smallest i with gamma^i >= v.
func sketchIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(float64(v)) / sketchGammaLn))
}

// sketchValue returns the representative value for bucket index i: the
// γ-midpoint 2·γ^i/(γ+1), whose relative distance to any value in the
// bucket is at most α.
func sketchValue(i int) int64 {
	gamma := math.Exp(sketchGammaLn)
	v := 2 * math.Exp(float64(i)*sketchGammaLn) / (gamma + 1)
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	if v < 1 {
		return 1
	}
	return int64(math.Round(v))
}

// Sketch is a mergeable quantile sketch over non-negative int64
// observations (durations in nanoseconds, counts): a log-scale
// histogram with fixed global bucket boundaries and a guaranteed
// relative error of SketchAlpha on every quantile. The zero value is
// an empty sketch ready for Add.
//
// Buckets are stored sparsely: bins[j] counts observations in global
// bucket index off+j. Zero and negative observations (a zero-duration
// loop cannot happen, but the type should not lie) are counted in
// Zeros and sort before every positive bucket.
type Sketch struct {
	Off   int      `json:"off,omitempty"`
	Bins  []uint64 `json:"bins,omitempty"`
	Zeros uint64   `json:"zeros,omitempty"`
	N     uint64   `json:"n"`
	// Sum is kept as float64: int64 would overflow summing ~10^6
	// nanosecond-scale observations; the mean does not need exactness.
	Sum float64 `json:"sum"`
	Min int64   `json:"min"`
	Max int64   `json:"max"`
}

// Add records one observation.
func (s *Sketch) Add(v int64) {
	if s.N == 0 || v < s.Min {
		s.Min = v
	}
	if s.N == 0 || v > s.Max {
		s.Max = v
	}
	s.N++
	s.Sum += float64(v)
	if v <= 0 {
		s.Zeros++
		return
	}
	i := sketchIndex(v)
	if i > sketchMaxIndex {
		i = sketchMaxIndex
	}
	s.grow(i)
	s.Bins[i-s.Off]++
}

// grow extends the sparse bucket window to include global index i.
func (s *Sketch) grow(i int) {
	if len(s.Bins) == 0 {
		s.Off = i
		s.Bins = []uint64{0}
		return
	}
	if i < s.Off {
		pad := make([]uint64, s.Off-i, s.Off-i+len(s.Bins))
		s.Bins = append(pad, s.Bins...)
		s.Off = i
		return
	}
	for i >= s.Off+len(s.Bins) {
		s.Bins = append(s.Bins, 0)
	}
}

// Merge folds other into s. Merging is element-wise addition over
// identical global buckets, so it is associative and commutative:
// any merge tree over the same observations yields the same sketch.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.N == 0 {
		return
	}
	if s.N == 0 {
		s.Min, s.Max = other.Min, other.Max
	} else {
		if other.Min < s.Min {
			s.Min = other.Min
		}
		if other.Max > s.Max {
			s.Max = other.Max
		}
	}
	s.N += other.N
	s.Sum += other.Sum
	s.Zeros += other.Zeros
	if len(other.Bins) > 0 {
		s.grow(other.Off)
		s.grow(other.Off + len(other.Bins) - 1)
		for j, c := range other.Bins {
			s.Bins[other.Off+j-s.Off] += c
		}
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.N }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile returns an estimate of the q-quantile (q in (0, 1]) with
// relative error at most SketchAlpha. It returns 0 on an empty sketch
// (analytics endpoints prefer a zero row over a panic).
func (s *Sketch) Quantile(q float64) int64 {
	if s.N == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.N)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.Zeros {
		return 0
	}
	cum := s.Zeros
	for j, c := range s.Bins {
		cum += c
		if cum >= rank {
			v := sketchValue(s.Off + j)
			// The exact extremes are tracked; never estimate outside them.
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Bucket is one histogram bucket of a sketch or integer histogram, for
// API exposition: observations v with Lo <= v <= Hi.
type Bucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty log-scale buckets in increasing value
// order, the zero bucket first when populated.
func (s *Sketch) Buckets() []Bucket {
	var out []Bucket
	if s.Zeros > 0 {
		out = append(out, Bucket{Lo: 0, Hi: 0, Count: s.Zeros})
	}
	gamma := math.Exp(sketchGammaLn)
	for j, c := range s.Bins {
		if c == 0 {
			continue
		}
		i := s.Off + j
		hi := math.Exp(float64(i) * sketchGammaLn)
		lo := hi / gamma
		out = append(out, Bucket{Lo: int64(lo) + 1, Hi: int64(hi), Count: c})
	}
	return out
}

// validate rejects structurally impossible sketch images (negative
// offsets past the index range, count mismatches) so a corrupt
// snapshot cannot smuggle in quantile answers that crash later.
func (s *Sketch) validate() error {
	if s.Off < 0 || s.Off > sketchMaxIndex {
		return fmt.Errorf("analytics: sketch offset %d out of range", s.Off)
	}
	if s.Off+len(s.Bins) > sketchMaxIndex+1 {
		return fmt.Errorf("analytics: sketch spans %d buckets past the index range", s.Off+len(s.Bins))
	}
	var binned uint64
	for _, c := range s.Bins {
		binned += c
	}
	if binned+s.Zeros != s.N {
		return errors.New("analytics: sketch bucket counts disagree with N")
	}
	if s.N > 0 && s.Min > s.Max {
		return errors.New("analytics: sketch min exceeds max")
	}
	return nil
}
