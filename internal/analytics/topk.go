package analytics

import (
	"errors"
	"sort"
)

// TopK is a space-saving heavy-hitter counter (Metwally et al.): it
// tracks at most Cap keys; when a new key arrives at capacity it
// evicts the key with the smallest count and inherits that count as
// its overestimation error. For any key actually among the heaviest,
// Count is an overestimate by at most Err — the documented bound the
// stats API reports alongside every row.
//
// Merging two summaries sums counts and errors for shared keys, keeps
// the union's heaviest Cap keys, and folds the dropped keys' weight
// into the survivors' error the same way eviction does. The result is
// order-insensitive in which keys survive only up to ties; the count
// and error bounds hold regardless of merge order.
type TopK struct {
	Cap   int            `json:"cap"`
	Items []TopKItem     `json:"items,omitempty"`
	idx   map[string]int // key -> Items index; rebuilt after decode
}

// TopKItem is one tracked key.
type TopKItem struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	// Err is the maximum overestimation of Count.
	Err uint64 `json:"err,omitempty"`
}

// NewTopK returns a counter tracking at most cap keys (minimum 1).
func NewTopK(cap int) *TopK {
	if cap < 1 {
		cap = 1
	}
	return &TopK{Cap: cap, idx: make(map[string]int)}
}

// ensureIdx rebuilds the key index after a decode left it nil.
func (t *TopK) ensureIdx() {
	if t.idx != nil {
		return
	}
	t.idx = make(map[string]int, len(t.Items))
	for i, it := range t.Items {
		t.idx[it.Key] = i
	}
}

// Add counts one occurrence of key.
func (t *TopK) Add(key string) { t.AddN(key, 1) }

// AddN counts n occurrences of key.
func (t *TopK) AddN(key string, n uint64) {
	if n == 0 {
		return
	}
	t.ensureIdx()
	if i, ok := t.idx[key]; ok {
		t.Items[i].Count += n
		return
	}
	if len(t.Items) < t.Cap {
		t.idx[key] = len(t.Items)
		t.Items = append(t.Items, TopKItem{Key: key, Count: n})
		return
	}
	// Evict the minimum-count key; the newcomer inherits its count as
	// overestimation error.
	min := 0
	for i := 1; i < len(t.Items); i++ {
		if t.Items[i].Count < t.Items[min].Count {
			min = i
		}
	}
	evicted := t.Items[min]
	delete(t.idx, evicted.Key)
	t.Items[min] = TopKItem{Key: key, Count: evicted.Count + n, Err: evicted.Count}
	t.idx[key] = min
}

// Merge folds other into t.
func (t *TopK) Merge(other *TopK) {
	if other == nil || len(other.Items) == 0 {
		return
	}
	t.ensureIdx()
	merged := make(map[string]TopKItem, len(t.Items)+len(other.Items))
	for _, it := range t.Items {
		merged[it.Key] = it
	}
	for _, it := range other.Items {
		if have, ok := merged[it.Key]; ok {
			have.Count += it.Count
			have.Err += it.Err
			merged[it.Key] = have
		} else {
			merged[it.Key] = it
		}
	}
	items := make([]TopKItem, 0, len(merged))
	for _, it := range merged {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
	if len(items) > t.Cap {
		// Dropped keys could have been any of the survivors undercounted
		// elsewhere: fold the largest dropped count into every survivor's
		// error bound, exactly like eviction does.
		spill := items[t.Cap].Count
		items = items[:t.Cap]
		for i := range items {
			items[i].Err += spill
		}
	}
	t.Items = items
	t.idx = nil
	t.ensureIdx()
}

// Top returns the tracked keys, heaviest first (ties by key).
func (t *TopK) Top() []TopKItem {
	out := make([]TopKItem, len(t.Items))
	copy(out, t.Items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// validate rejects impossible images from a snapshot.
func (t *TopK) validate() error {
	if t.Cap < 1 || t.Cap > 1<<16 {
		return errors.New("analytics: top-k capacity out of range")
	}
	if len(t.Items) > t.Cap {
		return errors.New("analytics: top-k holds more keys than its capacity")
	}
	seen := make(map[string]bool, len(t.Items))
	for _, it := range t.Items {
		if it.Key == "" || seen[it.Key] {
			return errors.New("analytics: top-k has empty or duplicate key")
		}
		if it.Err > it.Count {
			return errors.New("analytics: top-k error bound exceeds count")
		}
		seen[it.Key] = true
	}
	return nil
}
