package analytics

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"loopscope/internal/obs/provenance"
)

func TestLatencyStoreOrderIndependent(t *testing.T) {
	type ob struct {
		seg, vantage, id string
		ns               int64
		clamped          bool
	}
	var obs []ob
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		obs = append(obs, ob{
			seg:     provenance.Segments[i%len(provenance.Segments)],
			vantage: fmt.Sprintf("bb%d", i%3),
			id:      fmt.Sprintf("ev-%04d", i),
			ns:      rng.Int63n(5_000_000),
			clamped: i%17 == 0,
		})
	}
	a, b := NewLatencyStore(), NewLatencyStore()
	for _, o := range obs {
		a.Observe(o.seg, o.vantage, o.id, o.ns, o.clamped)
	}
	perm := rng.Perm(len(obs))
	for _, i := range perm {
		o := obs[i]
		b.Observe(o.seg, o.vantage, o.id, o.ns, o.clamped)
	}
	da, _ := json.Marshal(a.Snapshot("", ""))
	db, _ := json.Marshal(b.Snapshot("", ""))
	if string(da) != string(db) {
		t.Fatalf("snapshot depends on arrival order:\n%s\n%s", da, db)
	}
}

func TestLatencyStoreMerge(t *testing.T) {
	whole, left, right := NewLatencyStore(), NewLatencyStore(), NewLatencyStore()
	for i := 0; i < 100; i++ {
		seg := provenance.SegDetectCluster
		v := fmt.Sprintf("bb%d", i%2)
		id := fmt.Sprintf("ev-%03d", i)
		ns := int64(1000 * (i + 1))
		clamped := i%11 == 0
		whole.Observe(seg, v, id, ns, clamped)
		if i%2 == 0 {
			left.Observe(seg, v, id, ns, clamped)
		} else {
			right.Observe(seg, v, id, ns, clamped)
		}
	}
	left.Merge(right)
	dw, _ := json.Marshal(whole.Snapshot("", ""))
	dm, _ := json.Marshal(left.Snapshot("", ""))
	if string(dw) != string(dm) {
		t.Fatalf("merge != whole:\n%s\n%s", dw, dm)
	}
}

func TestLatencyStoreClampedKeptOutOfSketch(t *testing.T) {
	s := NewLatencyStore()
	s.Observe(provenance.SegPublishIngest, "bb1", "ev-1", 500, false)
	s.Observe(provenance.SegPublishIngest, "bb1", "ev-2", 0, true)
	s.Observe(provenance.SegPublishIngest, "bb1", "ev-3", 0, true)
	st := s.Snapshot("", "")
	if len(st.Segments) != 1 {
		t.Fatalf("got %d rows, want 1", len(st.Segments))
	}
	row := st.Segments[0]
	if row.Count != 1 {
		t.Errorf("clamped observations leaked into the sketch: count=%d", row.Count)
	}
	if row.Clamped != 2 {
		t.Errorf("clamped=%d, want 2", row.Clamped)
	}
	if len(row.Exemplars) != 1 || row.Exemplars[0].EventID != "ev-1" {
		t.Errorf("exemplars=%+v, want just ev-1", row.Exemplars)
	}
}

func TestLatencyStoreExemplarsDeterministicTopK(t *testing.T) {
	s := NewLatencyStore()
	// More observations than the cap, with a tie at the cut line.
	for i, ns := range []int64{10, 50, 50, 40, 30, 20, 50} {
		s.Observe(provenance.SegDetectCluster, "bb1", fmt.Sprintf("ev-%d", i), ns, false)
	}
	row := s.Snapshot("", "").Segments[0]
	if len(row.Exemplars) != latencyExemplarCap {
		t.Fatalf("kept %d exemplars, want %d", len(row.Exemplars), latencyExemplarCap)
	}
	// Slowest first; the three 50s beat 40, ties break by ID ascending.
	want := []LatencyExemplar{
		{EventID: "ev-1", Ns: 50}, {EventID: "ev-2", Ns: 50},
		{EventID: "ev-6", Ns: 50}, {EventID: "ev-3", Ns: 40},
	}
	for i, w := range want {
		if row.Exemplars[i] != w {
			t.Fatalf("exemplars[%d] = %+v, want %+v (all: %+v)", i, row.Exemplars[i], w, row.Exemplars)
		}
	}
	// Re-observing an identical (id, ns) pair — a replay — changes nothing.
	s.Observe(provenance.SegDetectCluster, "bb1", "ev-1", 50, false)
	row2 := s.Snapshot("", "").Segments[0]
	for i, w := range want {
		if row2.Exemplars[i] != w {
			t.Fatalf("replay disturbed exemplars: %+v", row2.Exemplars)
		}
	}
}

func TestLatencyStoreSnapshotFiltersAndOrder(t *testing.T) {
	s := NewLatencyStore()
	s.Observe(provenance.SegDetectCluster, "bb2", "e1", 10, false)
	s.Observe(provenance.SegDetectPublish, "bb1", "e2", 20, false)
	s.Observe(provenance.SegDetectPublish, "bb2", "e3", 30, false)
	st := s.Snapshot("", "")
	var got []string
	for _, r := range st.Segments {
		got = append(got, r.Segment+"/"+r.Vantage)
	}
	want := []string{"detect_publish/bb1", "detect_publish/bb2", "detect_cluster/bb2"}
	if len(got) != len(want) {
		t.Fatalf("rows %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows %v, want %v", got, want)
		}
	}
	only := s.Snapshot("bb1", "")
	if len(only.Segments) != 1 || only.Segments[0].Vantage != "bb1" {
		t.Fatalf("vantage filter: %+v", only.Segments)
	}
	seg := s.Snapshot("", provenance.SegDetectCluster)
	if len(seg.Segments) != 1 || seg.Segments[0].Segment != provenance.SegDetectCluster {
		t.Fatalf("segment filter: %+v", seg.Segments)
	}
	if vs := s.Vantages(); len(vs) != 2 || vs[0] != "bb1" || vs[1] != "bb2" {
		t.Fatalf("Vantages() = %v", vs)
	}
}

func TestLatencyStoreNilSafe(t *testing.T) {
	var s *LatencyStore
	s.Observe("x", "y", "z", 1, false) // must not panic
	s.Merge(NewLatencyStore())
	if st := s.Snapshot("", ""); len(st.Segments) != 0 {
		t.Fatalf("nil snapshot: %+v", st)
	}
	if s.Vantages() != nil {
		t.Fatal("nil Vantages not nil")
	}
}
