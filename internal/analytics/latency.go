package analytics

import (
	"sort"
	"sync"

	"loopscope/internal/obs/provenance"
)

// This file is the pipeline-provenance analytics: per-hop-segment
// latency sketches keyed by (segment, vantage), fed by the fleet
// aggregator from the provenance records riding on ingested events.
// Like the collector's fleet stats, every ingredient is mergeable and
// arrival-order-independent — sketch adds commute, clamp counts are
// plain sums, and exemplar selection is a deterministic top-K — so a
// journal replay (or a merge across aggregators) reproduces the same
// latency document byte for byte regardless of observation order.

// latencyExemplarCap bounds the slowest-observation exemplars kept per
// (segment, vantage) row. Four is enough to hand an operator concrete
// trail IDs for the slow tail without growing the document.
const latencyExemplarCap = 4

// LatencyExemplar ties one slow latency observation back to the event
// that suffered it. The event ID doubles as the originating daemon's
// flight-recorder trail ID (both are flight.LoopID), so
// /api/v1/trace/{eventId} on that vantage's daemon serves the decision
// log behind the number.
type LatencyExemplar struct {
	EventID string `json:"eventId"`
	Ns      int64  `json:"ns"`
}

// SegmentStats is one (segment, vantage) row of the latency document.
type SegmentStats struct {
	Segment string `json:"segment"`
	Vantage string `json:"vantage"`
	Count   uint64 `json:"count"`
	// Clamped counts negative cross-process deltas (vantage clock ahead
	// of the aggregator) that were clamped to zero and *not* added to
	// the sketch.
	Clamped   uint64            `json:"clamped,omitempty"`
	Mean      float64           `json:"mean"`
	Min       int64             `json:"min"`
	Max       int64             `json:"max"`
	Quantiles map[string]int64  `json:"quantiles"`
	Buckets   []Bucket          `json:"buckets"`
	Exemplars []LatencyExemplar `json:"exemplars,omitempty"`
}

// LatencyStats is the full latency document: rows in canonical
// segment order (provenance.Segments), vantages sorted within a
// segment — a deterministic rendering of deterministic state.
type LatencyStats struct {
	// ErrorBound is the sketches' relative quantile error (SketchAlpha).
	ErrorBound float64        `json:"errorBound"`
	Segments   []SegmentStats `json:"segments"`
}

// latencyCell is one (segment, vantage) accumulation.
type latencyCell struct {
	Sketch    Sketch            `json:"sketch"`
	Clamped   uint64            `json:"clamped,omitempty"`
	Exemplars []LatencyExemplar `json:"exemplars,omitempty"`
}

// LatencyStore accumulates per-segment, per-vantage latency sketches.
// Safe for concurrent use; the zero value is not usable, construct
// with NewLatencyStore.
type LatencyStore struct {
	mu    sync.Mutex
	cells map[string]map[string]*latencyCell // segment -> vantage
}

// NewLatencyStore returns an empty store.
func NewLatencyStore() *LatencyStore {
	return &LatencyStore{cells: make(map[string]map[string]*latencyCell)}
}

// Observe folds one segment latency in. A clamped observation (the
// caller detected a negative cross-process delta) only increments the
// clamp counter — it never reaches the sketch, so skew cannot corrupt
// the histogram's low buckets. Nil-safe: a nil store ignores the call.
func (s *LatencyStore) Observe(segment, vantage, eventID string, ns int64, clamped bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cellLocked(segment, vantage)
	if clamped {
		c.Clamped++
		return
	}
	c.Sketch.Add(ns)
	c.noteExemplar(eventID, ns)
}

func (s *LatencyStore) cellLocked(segment, vantage string) *latencyCell {
	byV := s.cells[segment]
	if byV == nil {
		byV = make(map[string]*latencyCell)
		s.cells[segment] = byV
	}
	c := byV[vantage]
	if c == nil {
		c = &latencyCell{}
		byV[vantage] = c
	}
	return c
}

// noteExemplar keeps the slowest latencyExemplarCap observations,
// ordered slowest first with event-ID ties broken lexically — a pure
// function of the observation *set*, so arrival order cannot change
// which exemplars survive.
func (c *latencyCell) noteExemplar(eventID string, ns int64) {
	if eventID == "" {
		return
	}
	for _, e := range c.Exemplars {
		if e.EventID == eventID && e.Ns == ns {
			return // replay-merge safety: the same observation twice
		}
	}
	c.Exemplars = append(c.Exemplars, LatencyExemplar{EventID: eventID, Ns: ns})
	sort.Slice(c.Exemplars, func(i, j int) bool {
		if c.Exemplars[i].Ns != c.Exemplars[j].Ns {
			return c.Exemplars[i].Ns > c.Exemplars[j].Ns
		}
		return c.Exemplars[i].EventID < c.Exemplars[j].EventID
	})
	if len(c.Exemplars) > latencyExemplarCap {
		c.Exemplars = c.Exemplars[:latencyExemplarCap]
	}
}

// Merge folds another store in (fleet-of-fleets aggregation). Sketch
// merges are element-wise and exactly associative/commutative, clamp
// counts add, and exemplar selection re-runs the same deterministic
// top-K, so merge order does not matter.
func (s *LatencyStore) Merge(other *LatencyStore) {
	if s == nil || other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for seg, byV := range other.cells {
		for vantage, oc := range byV {
			c := s.cellLocked(seg, vantage)
			c.Sketch.Merge(&oc.Sketch)
			c.Clamped += oc.Clamped
			for _, e := range oc.Exemplars {
				c.noteExemplar(e.EventID, e.Ns)
			}
		}
	}
}

// Snapshot renders the latency document. Optional filters narrow to
// one vantage and/or one segment; empty strings keep everything.
func (s *LatencyStore) Snapshot(vantage, segment string) *LatencyStats {
	st := &LatencyStats{ErrorBound: SketchAlpha, Segments: []SegmentStats{}}
	if s == nil {
		return st
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := make([]string, 0, len(s.cells))
	for seg := range s.cells {
		if segment != "" && seg != segment {
			continue
		}
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool {
		ri, rj := provenance.SegmentRank(segs[i]), provenance.SegmentRank(segs[j])
		if ri != rj {
			return ri < rj
		}
		return segs[i] < segs[j]
	})
	for _, seg := range segs {
		byV := s.cells[seg]
		vantages := make([]string, 0, len(byV))
		for v := range byV {
			if vantage != "" && v != vantage {
				continue
			}
			vantages = append(vantages, v)
		}
		sort.Strings(vantages)
		for _, v := range vantages {
			c := byV[v]
			row := SegmentStats{
				Segment:   seg,
				Vantage:   v,
				Count:     c.Sketch.Count(),
				Clamped:   c.Clamped,
				Mean:      c.Sketch.Mean(),
				Quantiles: make(map[string]int64, len(quantilePoints)),
				Buckets:   c.Sketch.Buckets(),
			}
			if row.Buckets == nil {
				row.Buckets = []Bucket{}
			}
			if row.Count > 0 {
				row.Min, row.Max = c.Sketch.Min, c.Sketch.Max
			}
			for _, qp := range quantilePoints {
				row.Quantiles[qp.name] = c.Sketch.Quantile(qp.q)
			}
			if len(c.Exemplars) > 0 {
				row.Exemplars = append([]LatencyExemplar(nil), c.Exemplars...)
			}
			st.Segments = append(st.Segments, row)
		}
	}
	return st
}

// Vantages lists the vantages the store has rows for, sorted.
func (s *LatencyStore) Vantages() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, byV := range s.cells {
		for v := range byV {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
