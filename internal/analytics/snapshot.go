package analytics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// snapshotVersion is the on-disk analytics snapshot format version.
const snapshotVersion = 1

// snapshot is the serialized Collector image. Like the daemon
// checkpoint it is a single JSON document written atomically; unlike
// the journal it is state, not a log — a lost snapshot loses window
// history but never correctness, because the seen-ID ring rides along
// and keeps replayed events from double counting.
type snapshot struct {
	Version  int                       `json:"version"`
	Sources  map[string]*sourceWindows `json:"sources"`
	Seen     []string                  `json:"seen,omitempty"`
	Ingested uint64                    `json:"ingested"`
	Deduped  uint64                    `json:"deduped"`
}

// Snapshot serializes the Collector's full state.
func (c *Collector) Snapshot() ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("analytics: nil collector")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := snapshot{
		Version:  snapshotVersion,
		Sources:  c.sources,
		Seen:     c.seenFIFO,
		Ingested: c.ingested,
		Deduped:  c.deduped,
	}
	return json.Marshal(&snap)
}

// DecodeSnapshot strictly parses and validates a snapshot image,
// replacing the Collector's state. Unknown fields, version skew, and
// structurally impossible sketches are all rejected — same discipline
// as the daemon checkpoint decoder, so a torn or tampered file can
// never half-load.
func (c *Collector) DecodeSnapshot(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("analytics: decode snapshot: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("analytics: trailing data after snapshot")
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("analytics: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if len(snap.Seen) > seenCap {
		return fmt.Errorf("analytics: snapshot seen ring holds %d ids, cap %d", len(snap.Seen), seenCap)
	}
	seen := make(map[string]struct{}, len(snap.Seen))
	for _, id := range snap.Seen {
		if id == "" {
			return fmt.Errorf("analytics: snapshot seen ring holds empty id")
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("analytics: snapshot seen ring holds duplicate id %q", id)
		}
		seen[id] = struct{}{}
	}
	for name, sw := range snap.Sources {
		if name == "" || sw == nil {
			return fmt.Errorf("analytics: snapshot has empty source entry")
		}
		if len(sw.Tiers) != len(tiers) {
			return fmt.Errorf("analytics: snapshot source %q has %d tiers, want %d", name, len(sw.Tiers), len(tiers))
		}
		for ti, segs := range sw.Tiers {
			if len(segs) > tiers[ti].keep {
				return fmt.Errorf("analytics: snapshot source %q tier %d holds %d segments, cap %d", name, ti, len(segs), tiers[ti].keep)
			}
			last := int64(-1 << 62)
			for _, seg := range segs {
				if seg.MS == nil {
					return fmt.Errorf("analytics: snapshot source %q has segment without metrics", name)
				}
				if seg.StartUnix <= last {
					return fmt.Errorf("analytics: snapshot source %q tier %d segments out of order", name, ti)
				}
				last = seg.StartUnix
				if err := seg.MS.validate(); err != nil {
					return fmt.Errorf("analytics: snapshot source %q: %w", name, err)
				}
			}
		}
		if sw.All == nil {
			return fmt.Errorf("analytics: snapshot source %q missing cumulative view", name)
		}
		if err := sw.All.validate(); err != nil {
			return fmt.Errorf("analytics: snapshot source %q: %w", name, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if snap.Sources == nil {
		snap.Sources = make(map[string]*sourceWindows)
	}
	c.sources = snap.Sources
	c.seen = seen
	c.seenFIFO = snap.Seen
	c.ingested = snap.Ingested
	c.deduped = snap.Deduped
	return nil
}

// Save writes the snapshot atomically: temp file in the same
// directory, fsync, rename — the same crash discipline as the daemon
// checkpoint, so kill -9 leaves either the old image or the new one,
// never a torn hybrid.
func (c *Collector) Save(path string) error {
	data, err := c.Snapshot()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("analytics: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("analytics: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("analytics: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("analytics: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("analytics: snapshot rename: %w", err)
	}
	return nil
}

// Load restores the Collector from path. A missing file is a clean
// first start (nil error, empty state untouched). A corrupt file is
// quarantined to path+".corrupt" and reported so the caller can log
// and degrade health — analytics restart empty rather than refusing to
// start the daemon.
func (c *Collector) Load(path string) (quarantined bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("analytics: read snapshot: %w", err)
	}
	if decErr := c.DecodeSnapshot(data); decErr != nil {
		if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
			return false, fmt.Errorf("analytics: quarantine snapshot: %v (decode: %w)", renameErr, decErr)
		}
		return true, decErr
	}
	return false, nil
}
