package analytics

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testClock returns a Collector clock pinned to a mutable instant.
func testClock(t0 time.Time) (func() time.Time, *time.Time) {
	now := t0
	return func() time.Time { return now }, &now
}

func obsN(i int) LoopObs {
	return LoopObs{
		ID:             fmt.Sprintf("loop-%d", i),
		Prefix:         fmt.Sprintf("10.%d.0.0/16", i%4),
		DurationNs:     int64(1_000_000 * (i + 1)),
		TTLDelta:       3 + i%5,
		Streams:        1 + i%3,
		Replicas:       10 * (i + 1),
		EscapeDelaysNs: []int64{int64(500_000 * (i + 1))},
	}
}

func TestCollectorRecordAndQuery(t *testing.T) {
	clock, _ := testClock(time.Unix(1_700_000_000, 0))
	c := NewCollector(Options{Now: clock})
	for i := 0; i < 10; i++ {
		c.RecordLoop("src-a", obsN(i))
	}
	ing, dup := c.Counts()
	if ing != 10 || dup != 0 {
		t.Fatalf("counts %d/%d, want 10/0", ing, dup)
	}

	st, err := c.Query(Query{Window: 0, Source: "src-a"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Loops != 10 || st.Window != "all" {
		t.Fatalf("loops=%d window=%q", st.Loops, st.Window)
	}
	if len(st.Metrics) != len(Metrics) {
		t.Fatalf("got %d metrics, want %d", len(st.Metrics), len(Metrics))
	}
	dur := st.Metrics[MetricDuration]
	if dur.Count != 10 || dur.Kind != "sketch" {
		t.Fatalf("duration stats %+v", dur)
	}
	if dur.Min != 1_000_000 || dur.Max != 10_000_000 {
		t.Fatalf("duration min/max %d/%d", dur.Min, dur.Max)
	}
	ttl := st.Metrics[MetricTTLDelta]
	if ttl.Kind != "exact" || ttl.Count != 10 {
		t.Fatalf("ttl stats %+v", ttl)
	}
	esc := st.Metrics[MetricEscapeDelay]
	if esc.Count != 10 {
		t.Fatalf("escape delays %+v", esc)
	}
	if len(st.TopPrefixes) != 4 {
		t.Fatalf("top prefixes %v", st.TopPrefixes)
	}

	// Single-metric query trims the response.
	st, err = c.Query(Query{Source: "src-a", Metric: MetricStreams})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Metrics) != 1 || st.Metrics[MetricStreams].Count != 10 {
		t.Fatalf("metric-filtered stats %+v", st.Metrics)
	}

	// Unknown metric and unknown source are typed errors.
	if _, err := c.Query(Query{Metric: "bogus"}); err == nil {
		t.Fatal("unknown metric accepted")
	} else if _, ok := err.(*ErrUnknownMetric); !ok {
		t.Fatalf("error type %T", err)
	}
	if _, err := c.Query(Query{Source: "nope"}); err == nil {
		t.Fatal("unknown source accepted")
	} else if _, ok := err.(*ErrUnknownSource); !ok {
		t.Fatalf("error type %T", err)
	}
}

func TestCollectorDedup(t *testing.T) {
	c := NewCollector(Options{})
	o := obsN(0)
	c.RecordLoop("s", o)
	c.RecordLoop("s", o) // same ID: dropped
	o2 := obsN(1)
	o2.ID = "" // no ID: always counted
	c.RecordLoop("s", o2)
	c.RecordLoop("s", o2)
	ing, dup := c.Counts()
	if ing != 3 || dup != 1 {
		t.Fatalf("counts %d/%d, want 3/1", ing, dup)
	}
}

func TestCollectorWindows(t *testing.T) {
	base := time.Unix(1_700_000_000, 0).Truncate(24 * time.Hour)
	clock, now := testClock(base)
	c := NewCollector(Options{Now: clock})

	// One loop per minute for 10 minutes.
	for i := 0; i < 10; i++ {
		*now = base.Add(time.Duration(i) * time.Minute)
		c.RecordLoop("s", obsN(i))
	}
	*now = base.Add(9*time.Minute + 30*time.Second)

	cases := []struct {
		window time.Duration
		want   uint64
	}{
		// 5m window at now=9m30s: cutoff 4m30s; windows round outward to
		// segment edges, so the minute-4 segment is included — minutes 4..9.
		{5 * time.Minute, 6},
		{time.Hour, 10},
		{24 * time.Hour, 10},
		{0, 10},
	}
	for _, tc := range cases {
		st, err := c.Query(Query{Window: tc.window, Source: "s"})
		if err != nil {
			t.Fatal(err)
		}
		if st.Loops != tc.want {
			t.Errorf("window %v: loops=%d, want %d", tc.window, st.Loops, tc.want)
		}
	}

	// Jump past the minute tier's retention: 1m queries go empty, the
	// hour tier still answers.
	*now = base.Add(3 * time.Hour)
	c.RecordLoop("s", obsN(99))
	st, err := c.Query(Query{Window: 2 * time.Minute, Source: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Loops != 1 {
		t.Fatalf("after jump, 2m window loops=%d, want 1", st.Loops)
	}
	st, _ = c.Query(Query{Window: 4 * time.Hour, Source: "s"})
	if st.Loops != 11 {
		t.Fatalf("4h window loops=%d, want 11", st.Loops)
	}
}

func TestCollectorMultiSourceMerge(t *testing.T) {
	c := NewCollector(Options{})
	for i := 0; i < 4; i++ {
		c.RecordLoop("a", obsN(i))
	}
	for i := 4; i < 10; i++ {
		c.RecordLoop("b", obsN(i))
	}
	st, err := c.Query(Query{}) // all sources, all time
	if err != nil {
		t.Fatal(err)
	}
	if st.Loops != 10 {
		t.Fatalf("merged loops=%d, want 10", st.Loops)
	}
	if got := c.Sources(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("sources %v", got)
	}
}

func TestParseWindow(t *testing.T) {
	for _, s := range []string{"", "all"} {
		if d, err := ParseWindow(s); err != nil || d != 0 {
			t.Fatalf("ParseWindow(%q) = %v, %v", s, d, err)
		}
	}
	if d, err := ParseWindow("5m"); err != nil || d != 5*time.Minute {
		t.Fatalf("5m: %v, %v", d, err)
	}
	for _, s := range []string{"bogus", "-5m", "10s", "400h", "5"} {
		if _, err := ParseWindow(s); err == nil {
			t.Fatalf("ParseWindow(%q) accepted", s)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	clock, _ := testClock(time.Unix(1_700_000_000, 0))
	c := NewCollector(Options{Now: clock})
	for i := 0; i < 50; i++ {
		c.RecordLoop(fmt.Sprintf("src-%d", i%3), obsN(i))
	}
	data, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewCollector(Options{Now: clock})
	if err := restored.DecodeSnapshot(data); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"", "src-0", "src-1", "src-2"} {
		want, err := c.Query(Query{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Query(Query{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		if got.Loops != want.Loops {
			t.Fatalf("source %q: loops %d vs %d", src, got.Loops, want.Loops)
		}
		for _, m := range Metrics {
			if got.Metrics[m].Count != want.Metrics[m].Count ||
				got.Metrics[m].Quantiles["p50"] != want.Metrics[m].Quantiles["p50"] {
				t.Fatalf("source %q metric %s diverged after round trip", src, m)
			}
		}
	}
	// The seen ring rides along: replaying an old event stays deduped.
	restored.RecordLoop("src-0", obsN(0))
	ing, dup := restored.Counts()
	wantIng, _ := c.Counts()
	if ing != wantIng || dup != 1 {
		t.Fatalf("post-restore replay: ingested %d (want %d), deduped %d (want 1)", ing, wantIng, dup)
	}
}

// TestSnapshotTruncationEveryByte is the torn-tail discipline applied
// to the analytics snapshot: no prefix of a valid snapshot may decode,
// and every failure must leave the collector untouched.
func TestSnapshotTruncationEveryByte(t *testing.T) {
	c := NewCollector(Options{})
	for i := 0; i < 8; i++ {
		c.RecordLoop("s", obsN(i))
	}
	data, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		fresh := NewCollector(Options{})
		if err := fresh.DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at byte %d/%d decoded successfully", cut, len(data))
		}
		if ing, _ := fresh.Counts(); ing != 0 {
			t.Fatalf("failed decode at byte %d mutated collector", cut)
		}
	}
	// The full image still decodes.
	fresh := NewCollector(Options{})
	if err := fresh.DecodeSnapshot(data); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRejectsBadImages(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"version":1,"sources":{},"bogus":1}`,
		"wrong version": `{"version":2,"sources":{}}`,
		"trailing data": `{"version":1,"sources":{}}{"more":true}`,
		"empty source":  `{"version":1,"sources":{"":null}}`,
		"tier count":    `{"version":1,"sources":{"s":{"tiers":[],"all":{"duration":{"n":0,"sum":0,"min":0,"max":0},"ttlDelta":{"n":0},"streams":{"n":0},"replicas":{"n":0,"sum":0,"min":0,"max":0},"escapeDelay":{"n":0,"sum":0,"min":0,"max":0},"loops":0}}}}`,
		"count lies":    `{"version":1,"sources":{"s":{"tiers":[[],[],[]],"all":{"duration":{"n":5,"sum":0,"min":0,"max":0},"ttlDelta":{"n":0},"streams":{"n":0},"replicas":{"n":0,"sum":0,"min":0,"max":0},"escapeDelay":{"n":0,"sum":0,"min":0,"max":0},"loops":0}}}}`,
		"dup seen id":   `{"version":1,"sources":{},"seen":["a","a"]}`,
		"empty seen id": `{"version":1,"sources":{},"seen":[""]}`,
	}
	for name, img := range cases {
		c := NewCollector(Options{})
		if err := c.DecodeSnapshot([]byte(img)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotSaveLoadQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "analytics.snap")

	c := NewCollector(Options{})
	for i := 0; i < 5; i++ {
		c.RecordLoop("s", obsN(i))
	}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewCollector(Options{})
	if q, err := loaded.Load(path); err != nil || q {
		t.Fatalf("load: q=%v err=%v", q, err)
	}
	if ing, _ := loaded.Counts(); ing != 5 {
		t.Fatalf("loaded ingested=%d, want 5", ing)
	}

	// Missing file: clean first start.
	fresh := NewCollector(Options{})
	if q, err := fresh.Load(filepath.Join(dir, "absent")); err != nil || q {
		t.Fatalf("missing file: q=%v err=%v", q, err)
	}

	// Corrupt file: quarantined, error reported, state empty.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	hurt := NewCollector(Options{})
	q, err := hurt.Load(path)
	if err == nil || !q {
		t.Fatalf("corrupt load: q=%v err=%v", q, err)
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Fatalf("quarantine file missing: %v", statErr)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("corrupt file still in place: %v", statErr)
	}
	if ing, _ := hurt.Counts(); ing != 0 {
		t.Fatal("corrupt load left state behind")
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.RecordLoop("s", obsN(0)) // must not panic
	if ing, dup := c.Counts(); ing != 0 || dup != 0 {
		t.Fatal("nil counts")
	}
	if c.Sources() != nil {
		t.Fatal("nil sources")
	}
	if _, err := c.Query(Query{}); err == nil {
		t.Fatal("nil query accepted")
	}
}
