package analytics

import "loopscope/internal/core"

// ObsFromLoop reduces one detected loop to its analytics observation.
// It is the single reduction both feeding paths use — the daemon's
// publish pipeline and offline `loopdetect -json` — so online and
// offline distributions are computed from identical inputs.
func ObsFromLoop(id string, l *core.Loop) LoopObs {
	o := LoopObs{
		ID:         id,
		Prefix:     l.Prefix.String(),
		DurationNs: int64(l.Duration()),
		Streams:    len(l.Streams),
		Replicas:   l.Replicas(),
	}
	if len(l.Streams) > 0 {
		o.TTLDelta = l.Streams[0].TTLDelta()
	}
	for _, d := range l.EscapeDelays() {
		o.EscapeDelaysNs = append(o.EscapeDelaysNs, int64(d))
	}
	return o
}

// RecordResult feeds every loop of one offline detection result into
// the collector under the given source name.
func (c *Collector) RecordResult(source string, res *core.Result) {
	if c == nil || res == nil {
		return
	}
	for _, l := range res.Loops {
		c.RecordLoop(source, ObsFromLoop("", l))
	}
}
