// Package api holds the /api/v1 wire conventions shared by every
// HTTP surface in the system — the loopscoped daemon (internal/serve)
// and the fleet aggregator (internal/agg). One envelope for success:
//
//	{"data": …, "meta": {"api": "v1", …}}
//
// one error object with a correct status code:
//
//	{"error": {"code": "bad_param", "message": "…"}}
//
// and one query-parameter contract: unknown or repeated parameters
// are a 400, never silently ignored. Keeping the protocol in one
// package is what lets pkg/loopscope talk to both tiers with a single
// client.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Meta is the envelope's metadata block.
type Meta struct {
	API string `json:"api"`
	// Vantage is the answering instance's stable identity (the
	// loopscoped -vantage flag), so aggregators can attribute a
	// response without transport heuristics.
	Vantage string `json:"vantage,omitempty"`
	// Total is the all-time event count behind a paginated listing.
	Total *int64 `json:"total,omitempty"`
	// NextCursor, when present, fetches the next (older) page.
	NextCursor *int64 `json:"nextCursor,omitempty"`
}

// Envelope is every v1 success response.
type Envelope struct {
	Data any  `json:"data"`
	Meta Meta `json:"meta"`
}

// ErrorBody is every v1 error response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the machine-readable error object.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// v1 error codes.
const (
	ErrBadParam = "bad_param" // malformed or unknown query parameter (400)
	ErrNotFound = "not_found" // well-formed reference to a missing resource (404)
	ErrDisabled = "disabled"  // the subsystem behind the endpoint is not configured (404)
)

// WriteOK renders one enveloped v1 response.
func WriteOK(w http.ResponseWriter, code int, data any, meta Meta) {
	meta.API = "v1"
	WriteJSON(w, code, Envelope{Data: data, Meta: meta})
}

// WriteError renders one v1 error object.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	WriteJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

// StrictParams enforces the v1 query-parameter contract: every
// parameter must be known and appear at most once. A typo'd or
// repeated parameter is a 400, never silently ignored.
func StrictParams(w http.ResponseWriter, r *http.Request, allowed ...string) bool {
	for name, vals := range r.URL.Query() {
		known := false
		for _, a := range allowed {
			if name == a {
				known = true
				break
			}
		}
		if !known {
			WriteError(w, http.StatusBadRequest, ErrBadParam,
				fmt.Sprintf("unknown parameter %q (allowed: %s)", name, strings.Join(allowed, ", ")))
			return false
		}
		if len(vals) > 1 {
			WriteError(w, http.StatusBadRequest, ErrBadParam,
				fmt.Sprintf("parameter %q repeated", name))
			return false
		}
	}
	return true
}

// WriteJSON renders one API response (enveloped or legacy).
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
