package corr_test

import (
	"strings"
	"testing"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/corr"
	"loopscope/internal/events"
	"loopscope/internal/routing"
)

// edgeLoop builds the one-loop input the edge tests share.
func edgeLoop(pfx string, start, end time.Duration) []*core.Loop {
	return []*core.Loop{{
		Prefix: routing.MustParsePrefix(pfx),
		Start:  start, End: end,
	}}
}

// TestAttributeEmptyInputs: every combination of empty loops and empty
// journal must produce a well-formed, empty report — and Render must
// handle it.
func TestAttributeEmptyInputs(t *testing.T) {
	empty := events.NewJournal()
	for _, c := range []struct {
		name  string
		loops []*core.Loop
		j     *events.Journal
	}{
		{"no loops, empty journal", nil, empty},
		{"no loops, nil journal", nil, nil},
		{"loops, empty journal", edgeLoop("198.51.100.0/24", 10*time.Second, 12*time.Second), empty},
		{"loops, nil journal", edgeLoop("198.51.100.0/24", 10*time.Second, 12*time.Second), nil},
	} {
		rep := corr.Attribute(c.loops, c.j, 30*time.Second)
		if len(rep.Attributions) != len(c.loops) {
			t.Errorf("%s: %d attributions, want %d", c.name, len(rep.Attributions), len(c.loops))
		}
		if rep.Unattributed != len(c.loops) {
			t.Errorf("%s: unattributed = %d, want %d", c.name, rep.Unattributed, len(c.loops))
		}
		if len(rep.ByCause) != 0 {
			t.Errorf("%s: causes from an empty journal: %v", c.name, rep.ByCause)
		}
		if rep.OnsetLatencyMs.N() != 0 {
			t.Errorf("%s: onset CDF has %d samples", c.name, rep.OnsetLatencyMs.N())
		}
		for _, a := range rep.Attributions {
			if a.Cause != nil || a.Healer != nil {
				t.Errorf("%s: phantom cause/healer: %+v", c.name, a)
			}
		}
		if out := corr.Render(rep); !strings.Contains(out, "Loop-cause attribution") {
			t.Errorf("%s: Render broke on the empty report:\n%s", c.name, out)
		}
	}
}

// TestAttributeSingleEventWindow: with exactly one journal event the
// attribution window bounds are exercised directly — the window is
// inclusive at both ends, and an event after the loop's onset can
// never be its cause.
func TestAttributeSingleEventWindow(t *testing.T) {
	const window = 30 * time.Second
	start := 2 * time.Minute
	for _, c := range []struct {
		name       string
		at         time.Duration
		attributed bool
	}{
		{"just outside the window", start - window - time.Nanosecond, false},
		{"exactly at the window edge", start - window, true},
		{"exactly at loop onset", start, true},
		{"after loop onset", start + time.Nanosecond, false},
	} {
		j := events.NewJournal()
		j.Append(events.Event{At: c.at, Kind: events.LinkFailed, Subject: "a->b"})
		rep := corr.Attribute(edgeLoop("203.0.113.0/24", start, start+time.Second), j, window)
		a := rep.Attributions[0]
		if got := a.Cause != nil; got != c.attributed {
			t.Errorf("%s: attributed = %v, want %v", c.name, got, c.attributed)
			continue
		}
		if c.attributed && a.OnsetLatency != start-c.at {
			t.Errorf("%s: onset latency = %v, want %v", c.name, a.OnsetLatency, start-c.at)
		}
	}
}

// TestAttributeTiedTimestamps: root causes carrying the same timestamp
// (one journal flush of a burst) must not confuse selection — among
// ties the prefix-matching event wins, and a tie without any prefix
// match resolves deterministically to the last appended.
func TestAttributeTiedTimestamps(t *testing.T) {
	pfx := routing.MustParsePrefix("198.51.100.0/24")
	at := 10 * time.Second
	j := events.NewJournal()
	j.Append(events.Event{At: at, Kind: events.LinkFailed, Subject: "x->y"})
	j.Append(events.Event{At: at, Kind: events.PrefixWithdrawn, Node: "e1",
		Prefixes: []routing.Prefix{pfx}})
	j.Append(events.Event{At: at, Kind: events.LinkFailed, Subject: "y->z"})

	rep := corr.Attribute([]*core.Loop{{Prefix: pfx, Start: 12 * time.Second, End: 13 * time.Second}},
		j, 30*time.Second)
	a := rep.Attributions[0]
	if a.Cause == nil || a.Cause.Kind != events.PrefixWithdrawn {
		t.Fatalf("cause = %+v, want the prefix-matching withdrawal among the tied events", a.Cause)
	}

	// No prefix match anywhere: the tie resolves to the last appended.
	j2 := events.NewJournal()
	j2.Append(events.Event{At: at, Kind: events.LinkFailed, Subject: "x->y"})
	j2.Append(events.Event{At: at, Kind: events.LinkRepaired, Subject: "x->y"})
	rep = corr.Attribute(edgeLoop("203.0.113.0/24", 12*time.Second, 13*time.Second), j2, 30*time.Second)
	if c := rep.Attributions[0].Cause; c == nil || c.Kind != events.LinkRepaired {
		t.Errorf("tied no-prefix cause = %+v, want the last appended (link-repaired)", c)
	}
}

// TestHealerJustBeforeEnd: a prefix-matching FIB update landing just
// before the loop's last replica (the update raced packets already in
// flight) is still credited as the healer, with a negative heal
// latency — but only when no matching update follows the end.
func TestHealerJustBeforeEnd(t *testing.T) {
	pfx := routing.MustParsePrefix("198.51.100.0/24")
	loop := []*core.Loop{{Prefix: pfx, Start: 10 * time.Second, End: 20 * time.Second}}
	const window = 30 * time.Second

	j := events.NewJournal()
	j.Append(events.Event{At: 18 * time.Second, Kind: events.FIBUpdated, Node: "n1",
		Prefixes: []routing.Prefix{pfx}})
	rep := corr.Attribute(loop, j, window)
	a := rep.Attributions[0]
	if a.Healer == nil || a.Healer.Node != "n1" {
		t.Fatalf("healer = %+v, want the pre-end matching update", a.Healer)
	}
	if a.HealLatency != -2*time.Second {
		t.Errorf("heal latency = %v, want -2s", a.HealLatency)
	}

	// A matching update after the end takes precedence over the
	// pre-end one.
	j.Append(events.Event{At: 21 * time.Second, Kind: events.FIBUpdated, Node: "n2",
		Prefixes: []routing.Prefix{pfx}})
	rep = corr.Attribute(loop, j, window)
	if h := rep.Attributions[0].Healer; h == nil || h.Node != "n2" {
		t.Errorf("healer = %+v, want the post-end update to win", h)
	}

	// A pre-end update for an unrelated prefix is never a healer.
	j3 := events.NewJournal()
	j3.Append(events.Event{At: 18 * time.Second, Kind: events.FIBUpdated, Node: "n3",
		Prefixes: []routing.Prefix{routing.MustParsePrefix("203.0.113.0/24")}})
	rep = corr.Attribute(loop, j3, window)
	if h := rep.Attributions[0].Healer; h != nil {
		t.Errorf("unrelated pre-end update credited as healer: %+v", h)
	}

	// Too far back (beyond half a window) does not count either.
	j4 := events.NewJournal()
	j4.Append(events.Event{At: 20*time.Second - window/2 - time.Second, Kind: events.FIBUpdated,
		Node: "n4", Prefixes: []routing.Prefix{pfx}})
	rep = corr.Attribute(loop, j4, window)
	if h := rep.Attributions[0].Healer; h != nil {
		t.Errorf("update beyond the half-window back credited as healer: %+v", h)
	}
}
