// Package corr correlates detected routing loops with the routing-
// event journal — the analysis the paper proposes as future work
// ("extending our data collection techniques to include complete BGP
// and IS-IS routing data ... allow us to provide explanations of the
// causes and effects of routing loops").
//
// Given the detector's merged loops and a journal of control-plane
// activity, Attribute assigns each loop a root cause: the latest
// exogenous event (link failure, link repair, prefix withdrawal or
// re-advertisement) inside an attribution window before the loop's
// first replica — preferring, when the event names prefixes, one that
// covers the loop's prefix. It also finds the FIB update that most
// plausibly closed the loop, giving the full story: cause → loop onset
// → convergence.
package corr

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/events"
	"loopscope/internal/stats"
)

// Attribution ties one detected loop to its control-plane story.
type Attribution struct {
	Loop *core.Loop
	// Cause is the attributed root-cause event, nil when nothing
	// plausible was found in the window.
	Cause *events.Event
	// OnsetLatency is loop start - cause time: how long after the
	// triggering event the first replica appeared on the link.
	OnsetLatency time.Duration
	// Healer is the FIB update nearest after the loop's last replica
	// (within the window), nil if none: the update that plausibly
	// restored consistency.
	Healer *events.Event
	// HealLatency is healer time - loop end (negative values mean the
	// update landed just before the last replica was captured, which
	// happens when the last looping packet was already in flight).
	HealLatency time.Duration
}

// Report summarises an attribution run.
type Report struct {
	Attributions []Attribution
	// ByCause counts attributed loops per root-cause kind;
	// unattributed loops count under the zero Kind with ok=false, see
	// Unattributed.
	ByCause      map[events.Kind]int
	Unattributed int
	// OnsetLatencyMs is the CDF of attribution onset latencies.
	OnsetLatencyMs *stats.CDF
}

// Attribute correlates loops with the journal. window bounds how far
// back (for causes) and forward (for healers) the search looks; 30
// seconds covers IGP convergence, a few minutes covers BGP.
func Attribute(loops []*core.Loop, j *events.Journal, window time.Duration) *Report {
	rep := &Report{
		ByCause:        make(map[events.Kind]int),
		OnsetLatencyMs: &stats.CDF{},
	}
	roots := j.RootCauses()
	fibs := j.Filter(events.FIBUpdated)

	for _, l := range loops {
		a := Attribution{Loop: l}
		if c := findCause(roots, l, window); c != nil {
			a.Cause = c
			a.OnsetLatency = l.Start - c.At
			rep.ByCause[c.Kind]++
			rep.OnsetLatencyMs.Add(float64(a.OnsetLatency) / float64(time.Millisecond))
		} else {
			rep.Unattributed++
		}
		if h := findHealer(fibs, l, window); h != nil {
			a.Healer = h
			a.HealLatency = h.At - l.End
		}
		rep.Attributions = append(rep.Attributions, a)
	}
	return rep
}

// covers reports whether the event names a prefix covering the loop's.
func covers(e *events.Event, l *core.Loop) bool {
	for _, p := range e.Prefixes {
		if p.Overlaps(l.Prefix) {
			return true
		}
	}
	return false
}

// findCause picks the best root cause: the latest prefix-matching
// event in [start-window, start], else the latest any-prefix event in
// the same range.
func findCause(roots []events.Event, l *core.Loop, window time.Duration) *events.Event {
	lo := l.Start - window
	var best, bestAny *events.Event
	for i := range roots {
		e := &roots[i]
		if e.At > l.Start {
			break // journal is time-ordered
		}
		if e.At < lo {
			continue
		}
		bestAny = e
		if len(e.Prefixes) > 0 && covers(e, l) {
			best = e
		}
	}
	if best != nil {
		return best
	}
	return bestAny
}

// findHealer picks the first prefix-matching FIB update at or after
// the loop's end (within window), else the first FIB update in that
// range. FIB updates from just before the end are also considered
// (half a window back) because the final looping packets may have
// been in flight when consistency was restored.
func findHealer(fibs []events.Event, l *core.Loop, window time.Duration) *events.Event {
	lo, hi := l.End-window/2, l.End+window
	i := sort.Search(len(fibs), func(i int) bool { return fibs[i].At >= lo })
	var early, any *events.Event
	for ; i < len(fibs) && fibs[i].At <= hi; i++ {
		e := &fibs[i]
		if covers(e, l) {
			if e.At >= l.End {
				return e
			}
			early = e // latest covering update just before the end
		}
		if any == nil && e.At >= l.End {
			any = e
		}
	}
	if early != nil {
		return early
	}
	return any
}

// Render prints the attribution report.
func Render(rep *Report) string {
	var b strings.Builder
	b.WriteString("Loop-cause attribution (detector loops x routing journal):\n")
	kinds := []events.Kind{events.LinkFailed, events.LinkRepaired,
		events.PrefixWithdrawn, events.PrefixAdvertised}
	for _, k := range kinds {
		if n := rep.ByCause[k]; n > 0 {
			fmt.Fprintf(&b, "  %-20s %d loops\n", k, n)
		}
	}
	if rep.Unattributed > 0 {
		fmt.Fprintf(&b, "  %-20s %d loops\n", "unattributed", rep.Unattributed)
	}
	if rep.OnsetLatencyMs.N() > 0 {
		fmt.Fprintf(&b, "  onset latency (cause -> first replica): p50=%.0fms p90=%.0fms\n",
			rep.OnsetLatencyMs.Quantile(0.5), rep.OnsetLatencyMs.Quantile(0.9))
	}
	for _, a := range rep.Attributions {
		cause := "?"
		if a.Cause != nil {
			cause = fmt.Sprintf("%v %s (+%v)", a.Cause.Kind, a.Cause.Subject,
				a.OnsetLatency.Round(time.Millisecond))
			if a.Cause.Subject == "" && a.Cause.Node != "" {
				cause = fmt.Sprintf("%v at %s (+%v)", a.Cause.Kind, a.Cause.Node,
					a.OnsetLatency.Round(time.Millisecond))
			}
		}
		heal := ""
		if a.Healer != nil {
			heal = fmt.Sprintf("  healed by FIB update at %s (%+v)",
				a.Healer.Node, a.HealLatency.Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "  loop %-18s %8v  cause: %s%s\n",
			a.Loop.Prefix, a.Loop.Duration().Round(time.Millisecond), cause, heal)
	}
	return b.String()
}
