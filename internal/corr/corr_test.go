package corr_test

import (
	"strings"
	"testing"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/corr"
	"loopscope/internal/events"
	"loopscope/internal/routing"
	"loopscope/internal/scenario"
)

func TestAttributeEndToEnd(t *testing.T) {
	spec := scenario.Spec{
		Name:             "corr-bb",
		Seed:             11,
		Duration:         90 * time.Second,
		PacketsPerSecond: 400,
		StablePrefixes:   16,
		Pockets: []scenario.PocketSpec{
			{Delta: 2, Prefixes: 3, Failures: 1, RepairAfter: 25 * time.Second},
			{Delta: 2, Prefixes: 3, Failures: 1, RepairAfter: 25 * time.Second},
			{Delta: 3, Prefixes: 3, Failures: 1, RepairAfter: 25 * time.Second},
		},
	}
	bb := scenario.Build(spec)
	bb.Run()
	recs := bb.Records()
	res := core.DetectRecords(recs, core.DefaultConfig())
	if len(res.Loops) == 0 {
		t.Fatal("no loops detected")
	}
	j := bb.Net.Journal
	if j.Len() == 0 {
		t.Fatal("journal empty")
	}
	// The journal must contain the root causes and reactions.
	counts := j.CountByKind()
	if counts[events.LinkFailed] != 3 || counts[events.LinkRepaired] != 3 {
		t.Errorf("root causes = %d failed / %d repaired, want 3/3",
			counts[events.LinkFailed], counts[events.LinkRepaired])
	}
	if counts[events.SPFComputed] == 0 || counts[events.FIBUpdated] == 0 ||
		counts[events.LSAOriginated] == 0 {
		t.Errorf("missing protocol reactions: %v", counts)
	}

	rep := corr.Attribute(res.Loops, j, 30*time.Second)
	if rep.Unattributed > 0 {
		t.Errorf("%d of %d loops unattributed", rep.Unattributed, len(res.Loops))
	}
	attributed := 0
	for _, a := range rep.Attributions {
		if a.Cause == nil {
			continue
		}
		attributed++
		if !a.Cause.Kind.RootCause() {
			t.Errorf("cause kind %v is not a root cause", a.Cause.Kind)
		}
		if a.OnsetLatency < 0 || a.OnsetLatency > 30*time.Second {
			t.Errorf("onset latency %v out of window", a.OnsetLatency)
		}
		if a.Healer == nil {
			t.Errorf("loop %v has no healer FIB update", a.Loop.Prefix)
		} else if a.HealLatency < -15*time.Second || a.HealLatency > 30*time.Second {
			t.Errorf("heal latency %v implausible", a.HealLatency)
		}
	}
	if attributed == 0 {
		t.Fatal("nothing attributed")
	}
	out := corr.Render(rep)
	for _, w := range []string{"link-", "onset latency", "healed by FIB update"} {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q:\n%s", w, out)
		}
	}
}

func TestAttributeBGPWithdrawal(t *testing.T) {
	spec := scenario.Spec{
		Name:             "corr-bgp",
		Seed:             7,
		Duration:         150 * time.Second,
		PacketsPerSecond: 500,
		StablePrefixes:   8,
		Pockets: []scenario.PocketSpec{
			{Delta: 2, Prefixes: 3, Failures: 1, RepairAfter: 50 * time.Second, BGPDriven: true},
		},
	}
	bb := scenario.Build(spec)
	bb.Run()
	res := core.DetectRecords(bb.Records(), core.DefaultConfig())
	if len(res.Loops) == 0 {
		t.Skip("seed produced no monitored-link loops for the BGP pocket")
	}
	rep := corr.Attribute(res.Loops, bb.Net.Journal, 2*time.Minute)
	// BGP pocket loops must be attributed to prefix withdrawals or
	// re-advertisements (prefix-matching beats time-nearest link
	// noise).
	got := rep.ByCause[events.PrefixWithdrawn] + rep.ByCause[events.PrefixAdvertised]
	if got == 0 {
		t.Errorf("no loops attributed to BGP events: %v (unattributed %d)",
			rep.ByCause, rep.Unattributed)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *events.Journal
	j.Append(events.Event{Kind: events.LinkFailed})
	if j.Len() != 0 || j.All() != nil || len(j.RootCauses()) != 0 {
		t.Error("nil journal must drop everything")
	}
	rep := corr.Attribute(nil, j, time.Minute)
	if len(rep.Attributions) != 0 {
		t.Error("no loops should mean no attributions")
	}
	_ = routing.Prefix{}
}

func TestCausePrefixPreference(t *testing.T) {
	// Two root causes in the window: a recent link failure (no
	// prefixes) and an older withdrawal naming the loop's prefix. The
	// prefix match must win despite being older.
	j := events.NewJournal()
	pfx := routing.MustParsePrefix("198.51.100.0/24")
	j.Append(events.Event{At: 10 * time.Second, Kind: events.PrefixWithdrawn,
		Node: "e1", Prefixes: []routing.Prefix{pfx}})
	j.Append(events.Event{At: 18 * time.Second, Kind: events.LinkFailed, Subject: "x->y"})
	loops := []*core.Loop{{
		Prefix: pfx,
		Start:  20 * time.Second, End: 22 * time.Second,
	}}
	rep := corr.Attribute(loops, j, 30*time.Second)
	if len(rep.Attributions) != 1 || rep.Attributions[0].Cause == nil {
		t.Fatalf("attribution missing: %+v", rep.Attributions)
	}
	if rep.Attributions[0].Cause.Kind != events.PrefixWithdrawn {
		t.Errorf("cause = %v, want prefix-withdrawn (prefix match beats recency)",
			rep.Attributions[0].Cause.Kind)
	}
	if rep.Attributions[0].OnsetLatency != 10*time.Second {
		t.Errorf("onset latency = %v", rep.Attributions[0].OnsetLatency)
	}
}

func TestCauseWindowBounds(t *testing.T) {
	j := events.NewJournal()
	j.Append(events.Event{At: 1 * time.Second, Kind: events.LinkFailed, Subject: "old"})
	loops := []*core.Loop{{
		Prefix: routing.MustParsePrefix("203.0.113.0/24"),
		Start:  2 * time.Minute, End: 2*time.Minute + time.Second,
	}}
	rep := corr.Attribute(loops, j, 30*time.Second)
	if rep.Unattributed != 1 {
		t.Errorf("stale cause attributed: %+v", rep.Attributions[0].Cause)
	}
	// Widening the window picks it up.
	rep = corr.Attribute(loops, j, 3*time.Minute)
	if rep.Unattributed != 0 {
		t.Error("cause inside widened window not attributed")
	}
}

func TestHealerSelection(t *testing.T) {
	j := events.NewJournal()
	pfx := routing.MustParsePrefix("198.51.100.0/24")
	other := routing.MustParsePrefix("203.0.113.0/24")
	// FIB updates: one for another prefix right at loop end, the
	// prefix-matching one a bit later — the matching one wins.
	j.Append(events.Event{At: 20 * time.Second, Kind: events.FIBUpdated,
		Node: "n1", Prefixes: []routing.Prefix{other}})
	j.Append(events.Event{At: 21 * time.Second, Kind: events.FIBUpdated,
		Node: "n2", Prefixes: []routing.Prefix{pfx}})
	loops := []*core.Loop{{Prefix: pfx, Start: 10 * time.Second, End: 19 * time.Second}}
	rep := corr.Attribute(loops, j, 30*time.Second)
	h := rep.Attributions[0].Healer
	if h == nil || h.Node != "n2" {
		t.Fatalf("healer = %+v, want the prefix-matching update at n2", h)
	}
	if rep.Attributions[0].HealLatency != 2*time.Second {
		t.Errorf("heal latency = %v", rep.Attributions[0].HealLatency)
	}
}
