package agg

import (
	"context"
	"time"

	"loopscope/pkg/loopscope"
)

// The pull transport: each PollTarget names one loopscoped daemon
// whose /api/v1/loops the aggregator walks with cursor pagination.
// Pull complements push — a daemon behind a NAT can webhook out, a
// daemon the aggregator can reach gets polled, and a fleet can run
// both for the same daemon because the seen-set makes redelivery
// free. The cursor (newest ring sequence already ingested) is
// checkpointed; losing it only causes refetches.

// PollTarget is one daemon to poll. Name keys the cursor checkpoint
// and is the fallback vantage attribution; the daemon's own vantage
// identity (event or envelope meta) wins when present.
type PollTarget struct {
	Name string
	URL  string
}

// pollPageLimit is the page size the poller requests — the server's
// maximum, to minimize round trips on catch-up.
const pollPageLimit = 1000

// PollLoop polls target every interval until ctx is done. The first
// round runs immediately. Once a round discovers the daemon's own
// vantage identity, it supersedes target.Name for cursor and health
// bookkeeping, so the vantage table shows one row per daemon no
// matter what the poll target was labelled.
func (a *Aggregator) PollLoop(ctx context.Context, target PollTarget, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := loopscope.New(target.URL)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if name, err := a.PollOnce(ctx, client, target); err != nil && ctx.Err() == nil {
			a.log.Warn("poll round failed", "target", name, "url", target.URL, "err", err)
		} else if name != target.Name {
			target.Name = name
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// PollOnce performs one poll round: walk pages newest-to-oldest until
// reaching the cursor, then ingest the new events oldest-first so
// clustering sees each vantage's events in emission order. It returns
// the vantage name the round resolved to (the daemon's own identity
// when discovered, target.Name otherwise); the outcome feeds that
// vantage's health/lag standing.
func (a *Aggregator) PollOnce(ctx context.Context, client *loopscope.Client, target PollTarget) (string, error) {
	name, err := a.pollOnce(ctx, client, target)
	a.notePollResult(name, err)
	return name, err
}

func (a *Aggregator) pollOnce(ctx context.Context, client *loopscope.Client, target PollTarget) (string, error) {
	last := a.Cursor(target.Name)
	var pending []loopscope.LoopEvent
	vantage := ""
	cursor := int64(0)
	for {
		page, err := client.Loops(ctx, loopscope.LoopsQuery{Limit: pollPageLimit, Cursor: cursor})
		if err != nil {
			return target.Name, err
		}
		if page.Vantage != "" {
			vantage = page.Vantage
		}
		if cursor == 0 && page.Total < last {
			// The daemon's all-time count fell below our cursor: it
			// restarted with a fresh ring and its sequence numbers
			// started over. Refetch everything; dedup absorbs overlap.
			last = 0
		}
		caughtUp := false
		for _, le := range page.Events {
			if le.Seq <= last {
				caughtUp = true
				break
			}
			pending = append(pending, le)
		}
		if caughtUp || page.NextCursor == 0 {
			break
		}
		cursor = page.NextCursor
	}
	name := vantage
	if name == "" {
		name = target.Name
	}
	newest := last
	for i := len(pending) - 1; i >= 0; i-- {
		le := pending[i]
		v := le.Event.Vantage
		if v == "" {
			v = name
		}
		if _, err := a.Ingest(Observation{Vantage: v, Transport: TransportPull, Event: le.Event}); err != nil {
			return name, err
		}
		if le.Seq > newest {
			newest = le.Seq
		}
	}
	a.SetCursor(name, newest)
	return name, nil
}
