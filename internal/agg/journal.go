package agg

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"loopscope/internal/serve"
)

// The observation journal is the aggregator's source of truth: one
// JSON line per accepted observation, appended before the observation
// mutates in-memory state. Restart = torn-tail repair + replay in
// order, which reproduces the exact fleet loop set (clustering is
// deterministic in observation order). The file reuses the serve
// tier's crash-consistency discipline — RepairTornTail quarantines a
// write cut short by kill -9 into a .quarantine sidecar, and replay
// skips (but counts and logs) lines that do not decode, so one
// corrupt record costs one observation, not the journal.

// journalLineMax bounds one journal line during replay. An
// observation with a large evidence payload is a few KB; a megabyte
// leaves orders of magnitude of headroom.
const journalLineMax = 1 << 20

// journal is the append handle.
type journal struct {
	f *os.File
}

// openJournal repairs path, replays every decodable line through
// apply (in file order), and returns the open append handle plus the
// replay count. A missing file starts an empty journal.
func openJournal(path string, log *slog.Logger, apply func(Observation)) (*journal, int, error) {
	if _, err := serve.RepairTornTail(path, log); err != nil {
		return nil, 0, fmt.Errorf("agg: repairing journal %s: %w", path, err)
	}
	replayed, err := replayJournal(path, log, apply)
	if err != nil {
		return nil, 0, err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, 0, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("agg: opening journal %s: %w", path, err)
	}
	return &journal{f: f}, replayed, nil
}

// replayJournal streams the journal's complete lines through apply.
func replayJournal(path string, log *slog.Logger, apply func(Observation)) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), journalLineMax)
	replayed, skipped := 0, 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var o Observation
		if err := json.Unmarshal(line, &o); err != nil || o.Vantage == "" || o.Event.ID == "" {
			skipped++
			continue
		}
		apply(o)
		replayed++
	}
	if err := sc.Err(); err != nil {
		return replayed, fmt.Errorf("agg: replaying journal %s: %w", path, err)
	}
	if skipped > 0 && log != nil {
		log.Warn("journal lines skipped during replay", "path", path, "skipped", skipped)
	}
	return replayed, nil
}

// append writes one observation line. Called under the aggregator's
// lock, so lines never interleave.
func (j *journal) append(o Observation) error {
	buf, err := json.Marshal(o)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = j.f.Write(buf)
	return err
}

func (j *journal) close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// checkpointVersion is the cursor checkpoint's on-disk format version.
const checkpointVersion = 1

// checkpoint is the pull transport's resume state: per-vantage ring
// sequence cursors. Losing it is safe — pollers refetch from the top
// of each daemon's ring and the seen-set deduplicates — so decoding
// is tolerant where the serve tier's source checkpoint is strict: a
// corrupt file is quarantined to a .corrupt sidecar and polling
// starts from scratch.
type checkpoint struct {
	Version   int              `json:"version"`
	SavedAtNs int64            `json:"savedAtNs"`
	Cursors   map[string]int64 `json:"cursors"`
}

// saveCheckpoint writes the cursors atomically: temp file in the same
// directory, fsync, rename.
func saveCheckpoint(path string, cursors map[string]int64, nowNs int64) error {
	buf, err := json.MarshalIndent(checkpoint{
		Version:   checkpointVersion,
		SavedAtNs: nowNs,
		Cursors:   cursors,
	}, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadCheckpoint reads the cursor map; a corrupt file is moved aside
// and reported as empty.
func loadCheckpoint(path string, log *slog.Logger) (map[string]int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var cp checkpoint
	if err := json.Unmarshal(buf, &cp); err != nil || cp.Version != checkpointVersion {
		side := path + ".corrupt"
		if mvErr := os.Rename(path, side); mvErr == nil && log != nil {
			log.Warn("corrupt cursor checkpoint quarantined", "path", path, "sidecar", side)
		}
		return nil, nil
	}
	return cp.Cursors, nil
}
