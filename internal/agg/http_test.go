package agg

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loopscope/pkg/loopscope"
)

// fleetServer builds an aggregator with a few cross-vantage
// observations behind its HTTP handler, plus the typed client —
// which doubles as the client-side contract check for the fleet
// endpoints.
func fleetServer(t *testing.T) (*Aggregator, *httptest.Server, *loopscope.Client) {
	t.Helper()
	a := newTestAgg(t, Config{})
	for _, o := range []Observation{
		obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3),
		obs1("bb2", "10.1.2.0/24", "e2", sec(12), sec(41), 3),
		obs1("bb1", "10.9.9.0/24", "e3", sec(100), sec(130), 5),
	} {
		if _, err := a.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(a.Handler())
	t.Cleanup(ts.Close)
	return a, ts, loopscope.New(ts.URL)
}

func TestFleetLoopsEndpoint(t *testing.T) {
	_, _, client := fleetServer(t)
	ctx := context.Background()
	loops, err := client.FleetLoops(ctx, loopscope.FleetLoopsQuery{})
	if err != nil {
		t.Fatalf("FleetLoops: %v", err)
	}
	if len(loops) != 2 {
		t.Fatalf("got %d fleet loops, want 2", len(loops))
	}
	if got := loops[0].Vantages; len(got) != 2 {
		t.Errorf("first loop vantages = %v, want two", got)
	}
	// Prefix filter narrows; limit keeps the newest.
	filtered, err := client.FleetLoops(ctx, loopscope.FleetLoopsQuery{Prefix: "10.9.9.0/24"})
	if err != nil || len(filtered) != 1 || filtered[0].Prefix != "10.9.9.0/24" {
		t.Errorf("prefix filter: got %+v, %v", filtered, err)
	}
	limited, err := client.FleetLoops(ctx, loopscope.FleetLoopsQuery{Limit: 1})
	if err != nil || len(limited) != 1 {
		t.Errorf("limit: got %d loops, %v; want 1", len(limited), err)
	}
}

func TestFleetVantagesEndpoint(t *testing.T) {
	_, _, client := fleetServer(t)
	vs, err := client.FleetVantages(context.Background())
	if err != nil {
		t.Fatalf("FleetVantages: %v", err)
	}
	if len(vs) != 2 || vs[0].Name != "bb1" || vs[1].Name != "bb2" {
		t.Fatalf("vantages = %+v, want sorted bb1, bb2", vs)
	}
	if vs[0].Observations != 2 {
		t.Errorf("bb1 observations = %d, want 2", vs[0].Observations)
	}
}

func TestFleetStatsEndpoint(t *testing.T) {
	_, _, client := fleetServer(t)
	ctx := context.Background()
	st, err := client.FleetStats(ctx, loopscope.FleetStatsQuery{})
	if err != nil {
		t.Fatalf("FleetStats: %v", err)
	}
	if st.Loops != 3 {
		t.Errorf("fleet loops ingested = %d, want 3", st.Loops)
	}
	one, err := client.FleetStats(ctx, loopscope.FleetStatsQuery{Vantage: "bb2"})
	if err != nil || one.Loops != 1 {
		t.Errorf("bb2 stats = %+v, %v; want 1 loop", one, err)
	}
}

// The latency endpoint serves the provenance sketch table through the
// typed client, with the fleet tier's filter and error discipline.
func TestFleetLatencyEndpoint(t *testing.T) {
	a, ts, client := fleetServer(t)
	ctx := context.Background()
	// The fleetServer seed events carry no provenance; add one that does.
	now := pinnedNow()
	o := obsProv("bb1", "10.1.2.0/24", "e9", sec(15), sec(42), now().Add(-30*time.Millisecond))
	if _, err := a.Ingest(o); err != nil {
		t.Fatal(err)
	}
	fl, err := client.FleetLatency(ctx, loopscope.FleetLatencyQuery{})
	if err != nil {
		t.Fatalf("FleetLatency: %v", err)
	}
	if len(fl.Segments) == 0 || fl.ErrorBound <= 0 {
		t.Fatalf("latency document empty: %+v", fl)
	}
	var sawE2E bool
	for _, row := range fl.Segments {
		if row.Segment == "detect_cluster" && row.Vantage == "bb1" {
			sawE2E = true
			if row.Count != 1 || len(row.Exemplars) != 1 || row.Exemplars[0].EventID != "e9" {
				t.Errorf("detect_cluster row = %+v, want 1 obs with exemplar e9", row)
			}
		}
	}
	if !sawE2E {
		t.Fatalf("no detect_cluster row for bb1: %+v", fl.Segments)
	}
	one, err := client.FleetLatency(ctx, loopscope.FleetLatencyQuery{Segment: "detect_cluster"})
	if err != nil || len(one.Segments) != 1 {
		t.Errorf("segment filter: %+v, %v", one, err)
	}

	var apiErr *loopscope.APIError
	_, err = client.FleetLatency(ctx, loopscope.FleetLatencyQuery{Vantage: "nope"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown vantage: %v, want 404", err)
	}
	_, err = client.FleetLatency(ctx, loopscope.FleetLatencyQuery{Segment: "bogus"})
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_param" {
		t.Errorf("unknown segment: %v, want bad_param", err)
	}

	// The agg statusz renders the vantage and latency tables.
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page bytes.Buffer
	if _, err := page.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := page.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d", resp.StatusCode)
	}
	for _, want := range []string{"loopscope-agg", "pipeline latency", "detect_cluster", "bb1", "e9"} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz missing %q", want)
		}
	}
}

// The fleet endpoints speak the daemon's exact error discipline:
// machine-readable codes behind *APIError.
func TestFleetAPIErrors(t *testing.T) {
	_, ts, client := fleetServer(t)
	ctx := context.Background()

	_, err := client.FleetStats(ctx, loopscope.FleetStatsQuery{Vantage: "nope"})
	var apiErr *loopscope.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("unknown vantage: err = %v, want 404 not_found", err)
	}
	_, err = client.FleetStats(ctx, loopscope.FleetStatsQuery{Metric: "bogus"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_param" {
		t.Errorf("unknown metric: err = %v, want 400 bad_param", err)
	}
	_, err = client.FleetStats(ctx, loopscope.FleetStatsQuery{Window: "yesterdayish"})
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_param" {
		t.Errorf("bad window: err = %v, want bad_param", err)
	}

	for _, bad := range []string{
		"/api/v1/fleet/loops?limit=0",
		"/api/v1/fleet/loops?limit=1&limit=2",
		"/api/v1/fleet/loops?nonsense=1",
		"/api/v1/fleet/vantages?x=y",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		var eb struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		dec := json.NewDecoder(resp.Body)
		if err := dec.Decode(&eb); err != nil {
			t.Fatalf("%s: decoding error body: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_param" {
			t.Errorf("%s: got %d %q, want 400 bad_param", bad, resp.StatusCode, eb.Error.Code)
		}
	}
}

// The push transport accepts the daemon's webhook payload, reports
// duplicates as accepted=false (success, not error), and rejects
// non-events.
func TestIngestEndpoint(t *testing.T) {
	a, ts, _ := fleetServer(t)
	ev := mkEvent("bb9", "tap", "10.5.5.0/24", "push1", sec(1), sec(30), 4)
	body, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	post := func(b []byte) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/ingest", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env map[string]json.RawMessage
		json.NewDecoder(resp.Body).Decode(&env)
		return resp, env
	}

	resp, env := post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d, body %v", resp.StatusCode, env)
	}
	var res ingestResult
	if err := json.Unmarshal(env["data"], &res); err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.Vantage != "bb9" || res.ID != "push1" {
		t.Errorf("ingest result = %+v, want accepted from bb9", res)
	}
	if !a.KnownVantage("bb9") {
		t.Error("vantage bb9 not registered after push")
	}

	// Webhook redelivery: success, accepted=false.
	resp, env = post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redelivery status = %d", resp.StatusCode)
	}
	json.Unmarshal(env["data"], &res)
	if res.Accepted {
		t.Error("redelivery reported accepted=true, want duplicate suppression")
	}

	// Garbage bodies are bad_param, not 500s.
	resp, env = post([]byte("definitely not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post([]byte(`{"source":"x"}`)) // no event ID
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ID-less event: status %d, want 400", resp.StatusCode)
	}
}

func TestAggHealthEndpoint(t *testing.T) {
	_, ts, _ := fleetServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Data struct {
			Status       string `json:"status"`
			Vantages     int    `json:"vantages"`
			Observations int64  `json:"observations"`
			FleetLoops   int    `json:"fleetLoops"`
		} `json:"data"`
		Meta struct {
			API string `json:"api"`
		} `json:"meta"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Meta.API != "v1" {
		t.Errorf("meta.api = %q, want v1", env.Meta.API)
	}
	if env.Data.Status != "ok" || env.Data.Vantages != 2 || env.Data.Observations != 3 || env.Data.FleetLoops != 2 {
		t.Errorf("health = %+v, want ok/2/3/2", env.Data)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Errorf("content-type = %q", resp.Header.Get("Content-Type"))
	}
}
