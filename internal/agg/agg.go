// Package agg is loopscope's fleet tier: an aggregation daemon core
// that ingests loop events from many loopscoped instances (pushed
// over webhook POSTs or pulled through /api/v1/loops cursor
// pagination), deduplicates observations of the same underlying
// routing loop seen from different vantages, and emits cluster-level
// FleetLoop records carrying per-vantage evidence.
//
// Correlation model: two observations describe the same loop when
// their destination prefixes fall in the same aggregated prefix
// (masked to Config.AggBits), their TTL deltas differ by at most
// Config.TTLSlack (the TTL decrement is the loop's router-cycle
// length — vantages watching the same cycle measure the same delta),
// and their time windows overlap within Config.JoinWindow. The
// cluster's window grows to the union of its members', so a loop that
// flaps across a long outage accretes every vantage's view.
//
// Determinism contract: the fleet loop set is a pure function of the
// observation sequence. Observations are journaled (append-only
// JSONL, torn-tail repaired, deduplicated by vantage+event ID) before
// they mutate state, and a restart replays the journal in order — so
// kill -9 at any point reproduces the same FleetLoop set and the same
// fleet statistics the pre-crash process would have served. No
// wall-clock reading participates in clustering; arrival stamps ride
// in the journal itself.
//
// Fleet statistics reuse internal/analytics keyed by vantage: the
// per-vantage sketches merge with the collector's associative,
// commutative element-wise merges in sorted vantage order, so the
// fleet-wide stats document is byte-identical no matter which daemon
// reported first.
package agg

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"time"

	"loopscope/internal/analytics"
	"loopscope/internal/obs"
	"loopscope/internal/obs/provenance"
	"loopscope/internal/resil"
	"loopscope/internal/routing"
	"loopscope/pkg/loopscope"
)

// Defaults for the correlation knobs.
const (
	// DefaultAggBits aggregates destination prefixes to /24 — the
	// paper's loop identities are destination-prefix scoped, and /24
	// absorbs per-host detail without fusing unrelated networks.
	DefaultAggBits = 24
	// DefaultJoinWindow is the slack allowed between observation
	// windows: vantages tap different links of the same cycle, so
	// their first/last looping packets differ by propagation and
	// detection-horizon skew, not by much more than seconds.
	DefaultJoinWindow = 5 * time.Second
	// DefaultTTLSlack requires exact TTL-delta agreement: every tap
	// on one cycle sees the same decrement.
	DefaultTTLSlack = 0
)

// Transports an observation can arrive by.
const (
	TransportPush = "push"
	TransportPull = "pull"
)

// Config configures an Aggregator.
type Config struct {
	// AggBits is the prefix-aggregation length of the correlation key
	// (0 means DefaultAggBits).
	AggBits int
	// JoinWindow is the time slack when matching observation windows
	// (0 means DefaultJoinWindow; negative disables slack entirely).
	JoinWindow time.Duration
	// TTLSlack is the maximum TTL-delta difference still considered
	// the same loop (negative means 0).
	TTLSlack int
	// Journal is the observation journal path; empty keeps state in
	// memory only (a restart starts blank).
	Journal string
	// Checkpoint is the pull-cursor checkpoint path; empty disables.
	Checkpoint string
	// Metrics, Health, Logger are optional wiring into the shared
	// observability layers; all nil-safe.
	Metrics *obs.Registry
	Health  *resil.HealthSet
	Logger  *slog.Logger
	// Now supplies arrival stamps and the analytics clock; nil uses
	// time.Now. Tests pin it.
	Now func() time.Time
}

// Observation is one loop event attributed to the vantage that saw
// it — the unit the journal stores and Ingest consumes. ReceivedAtNs
// is stamped at first ingest and preserved by replay, so lag
// rendering survives restarts without wall-clock reads during replay.
type Observation struct {
	Vantage      string          `json:"vantage"`
	Transport    string          `json:"transport,omitempty"`
	ReceivedAtNs int64           `json:"receivedAtNs,omitempty"`
	Event        loopscope.Event `json:"event"`
}

// FleetLoop mirrors pkg/loopscope.FleetLoop — the aggregator renders
// the wire type directly so the client-side mirror pins the contract.
type FleetLoop = loopscope.FleetLoop

// Evidence mirrors pkg/loopscope.FleetEvidence.
type Evidence = loopscope.FleetEvidence

// VantageInfo mirrors pkg/loopscope.FleetVantage.
type VantageInfo = loopscope.FleetVantage

// cluster is one fleet loop under construction. Everything in it
// derives from journaled observations — no wall-clock state — which
// is what makes replay reproduce clusters exactly.
type cluster struct {
	id       string
	prefix   string // aggregated correlation prefix
	ttlDelta int
	startNs  int64
	endNs    int64
	evidence []Evidence
	vantages map[string]bool
}

// vantageState is one daemon's standing: counters for the listing,
// the pull cursor, and the latest arrival stamp.
type vantageState struct {
	name         string
	transports   map[string]bool
	observations int64
	duplicates   int64
	lastEventNs  int64
	lastSeenNs   int64 // wall clock, from Observation.ReceivedAtNs
	cursor       int64
	pollErrs     int64
	lastErr      string
	// skewNs is the running minimum of (arrival stamp − publish
	// stamp) over provenance-carrying observations: transport latency
	// plus clock offset, so the minimum over many events approaches
	// the offset itself. Negative means the vantage's clock runs ahead
	// of the aggregator's. Derived purely from journaled values, so
	// replay reproduces it.
	skewNs      int64
	skewSamples int64
}

// Aggregator is the fleet-correlation state machine. Safe for
// concurrent use; the HTTP surface, the pollers, and the webhook
// ingest path all funnel into Ingest.
type Aggregator struct {
	cfg Config
	log *slog.Logger
	now func() time.Time

	stats *analytics.Collector
	// latency holds the per-(pipeline segment, vantage) provenance
	// sketches; fed under a.mu by applyLocked, so replay rebuilds it
	// deterministically alongside the cluster set.
	latency *analytics.LatencyStore

	mu       sync.Mutex
	seen     map[string]struct{} // vantage\x00eventID
	clusters []*cluster          // founding order
	byKey    map[string][]*cluster
	vantages map[string]*vantageState
	journal  *journal
	started  time.Time

	gFleetLoops *obs.Gauge
	gVantages   *obs.Gauge
	cJournalErr *obs.Counter
}

// New builds an Aggregator, repairs and replays its journal, and
// loads the cursor checkpoint. The returned aggregator is ready to
// ingest; Close flushes and releases the journal.
func New(cfg Config) (*Aggregator, error) {
	if cfg.AggBits == 0 {
		cfg.AggBits = DefaultAggBits
	}
	if cfg.AggBits < 0 || cfg.AggBits > 32 {
		return nil, fmt.Errorf("agg: AggBits %d outside [0,32]", cfg.AggBits)
	}
	if cfg.JoinWindow == 0 {
		cfg.JoinWindow = DefaultJoinWindow
	}
	if cfg.JoinWindow < 0 {
		cfg.JoinWindow = 0
	}
	if cfg.TTLSlack < 0 {
		cfg.TTLSlack = 0
	}
	log := cfg.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	a := &Aggregator{
		cfg:         cfg,
		log:         log,
		now:         now,
		stats:       analytics.NewCollector(analytics.Options{Now: now}),
		latency:     analytics.NewLatencyStore(),
		seen:        make(map[string]struct{}),
		byKey:       make(map[string][]*cluster),
		vantages:    make(map[string]*vantageState),
		started:     now(),
		gFleetLoops: cfg.Metrics.Gauge(obs.MetricAggFleetLoops),
		gVantages:   cfg.Metrics.Gauge(obs.MetricAggVantages),
		cJournalErr: cfg.Metrics.Counter(obs.MetricAggJournalErrors),
	}
	if cfg.Journal != "" {
		j, replayed, err := openJournal(cfg.Journal, log, func(o Observation) {
			a.apply(o)
		})
		if err != nil {
			return nil, err
		}
		a.journal = j
		if replayed > 0 {
			log.Info("journal replayed", "path", cfg.Journal, "observations", replayed,
				"fleetLoops", len(a.clusters))
		}
	}
	if cfg.Checkpoint != "" {
		cursors, err := loadCheckpoint(cfg.Checkpoint, log)
		if err != nil {
			return nil, err
		}
		for name, seq := range cursors {
			a.vantage(name).cursor = seq
		}
	}
	return a, nil
}

// Close flushes and closes the journal. The aggregator must not be
// used afterwards.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.journal == nil {
		return nil
	}
	err := a.journal.close()
	a.journal = nil
	return err
}

// Ingest records one observation. It returns true when the
// observation was new (journaled and folded into a cluster) and false
// when it was a duplicate of one already seen from the same vantage —
// the at-least-once transports redeliver freely and this is the
// idempotency point. An observation without a vantage identity or
// event ID is rejected with an error.
func (a *Aggregator) Ingest(o Observation) (bool, error) {
	if o.Vantage == "" {
		o.Vantage = o.Event.Vantage
	}
	if o.Vantage == "" {
		o.Vantage = o.Event.Source
	}
	if o.Vantage == "" {
		return false, errors.New("agg: observation carries no vantage identity")
	}
	if o.Event.ID == "" {
		return false, errors.New("agg: observation carries no event ID")
	}
	if o.ReceivedAtNs == 0 {
		o.ReceivedAtNs = a.now().UnixNano()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key := o.Vantage + "\x00" + o.Event.ID
	if _, dup := a.seen[key]; dup {
		vs := a.vantageLocked(o.Vantage)
		vs.duplicates++
		vs.noteTransport(o.Transport)
		a.cfg.Metrics.Counter(obs.LabelMetric(obs.MetricAggDuplicates, "vantage", o.Vantage)).Inc()
		return false, nil
	}
	// Journal before mutating state: a crash after the append replays
	// this observation, a crash before it never saw it — either way
	// the on-disk sequence and the in-memory state agree. An append
	// failure degrades durability, not availability: the observation
	// still counts, the health ladder says so.
	if a.journal != nil {
		if err := a.journal.append(o); err != nil {
			a.cJournalErr.Inc()
			a.cfg.Health.Set("journal", resil.Degraded)
			a.log.Error("journal append failed; observation kept in memory only",
				"vantage", o.Vantage, "id", o.Event.ID, "err", err)
		} else {
			a.cfg.Health.Set("journal", resil.Healthy)
		}
	}
	a.applyLocked(o)
	return true, nil
}

// apply folds an observation into state, taking the lock — the replay
// path uses it (journal appends are disabled during replay because
// the line is already on disk).
func (a *Aggregator) apply(o Observation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := o.Vantage + "\x00" + o.Event.ID
	if _, dup := a.seen[key]; dup {
		a.vantageLocked(o.Vantage).duplicates++
		return
	}
	a.applyLocked(o)
}

// applyLocked is the single state-mutation path, under a.mu. Every
// side effect here is a pure function of the observation sequence.
func (a *Aggregator) applyLocked(o Observation) {
	a.seen[o.Vantage+"\x00"+o.Event.ID] = struct{}{}
	vs := a.vantageLocked(o.Vantage)
	vs.observations++
	vs.noteTransport(o.Transport)
	if o.Event.EndNs > vs.lastEventNs {
		vs.lastEventNs = o.Event.EndNs
	}
	if o.ReceivedAtNs > vs.lastSeenNs {
		vs.lastSeenNs = o.ReceivedAtNs
	}
	a.closeOutProvenanceLocked(&o, vs)
	a.correlateLocked(o)
	a.stats.RecordLoop(o.Vantage, analytics.LoopObs{
		ID:         o.Vantage + "\x00" + o.Event.ID,
		Prefix:     o.Event.Prefix,
		DurationNs: o.Event.DurationNs,
		TTLDelta:   o.Event.TTLDelta,
		Streams:    o.Event.Streams,
		Replicas:   o.Event.Replicas,
	})
	a.cfg.Metrics.Counter(obs.LabelMetric(obs.MetricAggObservations, "vantage", o.Vantage)).Inc()
	a.gFleetLoops.Set(int64(len(a.clusters)))
	a.gVantages.Set(int64(len(a.vantages)))
}

// closeOutProvenanceLocked finishes an observation's hop record and
// feeds the latency sketches. The ingested and clustered stamps are
// both the journaled arrival stamp (clustering is synchronous under
// the ingest lock), so the close-out is a pure function of journaled
// data — a replay reproduces every sketch byte for byte without
// reading a clock. Negative cross-process deltas (vantage clock ahead
// of the aggregator) are clamped to zero, counted in
// loopscope_provenance_skew_total, and kept out of the sketches; the
// per-vantage skew estimate tracks the running minimum offset so the
// vantage listing can say why.
func (a *Aggregator) closeOutProvenanceLocked(o *Observation, vs *vantageState) {
	p := o.Event.Prov
	if p == nil {
		return
	}
	closed := *p
	closed.IngestedNs = o.ReceivedAtNs
	closed.ClusteredNs = o.ReceivedAtNs
	o.Event.Prov = &closed // evidence rows carry the closed-out record
	if p.PublishedNs > 0 {
		d := o.ReceivedAtNs - p.PublishedNs
		if vs.skewSamples == 0 || d < vs.skewNs {
			vs.skewNs = d
		}
		vs.skewSamples++
	}
	rec := provenance.Record{
		DetectedNs:    closed.DetectedNs,
		PublishedNs:   closed.PublishedNs,
		JournaledNs:   closed.JournaledNs,
		WebhookSentNs: closed.WebhookSentNs,
		IngestedNs:    closed.IngestedNs,
		ClusteredNs:   closed.ClusteredNs,
	}
	for _, l := range rec.Latencies() {
		a.latency.Observe(l.Segment, o.Vantage, o.Event.ID, l.Ns, l.Clamped)
		if l.Clamped {
			a.cfg.Metrics.Counter(obs.LabelMetric(obs.MetricProvenanceSkewTotal, "vantage", o.Vantage)).Inc()
		}
	}
}

// correlateLocked joins the observation to the first compatible
// cluster in founding order, or founds a new one. First-match in a
// deterministic order keeps replay exact; the join test is the
// correlation key described in the package comment.
func (a *Aggregator) correlateLocked(o Observation) {
	key := a.aggKey(o.Event.Prefix)
	slack := int64(a.cfg.JoinWindow)
	for _, c := range a.byKey[key] {
		if intAbs(c.ttlDelta-o.Event.TTLDelta) <= a.cfg.TTLSlack &&
			o.Event.StartNs <= c.endNs+slack && o.Event.EndNs >= c.startNs-slack {
			if o.Event.StartNs < c.startNs {
				c.startNs = o.Event.StartNs
			}
			if o.Event.EndNs > c.endNs {
				c.endNs = o.Event.EndNs
			}
			c.evidence = append(c.evidence, evidence(o))
			c.vantages[o.Vantage] = true
			return
		}
	}
	c := &cluster{
		id:       fleetID(key, o.Vantage, o.Event.ID),
		prefix:   key,
		ttlDelta: o.Event.TTLDelta,
		startNs:  o.Event.StartNs,
		endNs:    o.Event.EndNs,
		evidence: []Evidence{evidence(o)},
		vantages: map[string]bool{o.Vantage: true},
	}
	a.clusters = append(a.clusters, c)
	a.byKey[key] = append(a.byKey[key], c)
}

// aggKey masks a destination prefix to the configured aggregation
// length. An unparseable prefix correlates by its literal string —
// identical observations still cluster, unrelated ones cannot collide
// with real prefixes.
func (a *Aggregator) aggKey(prefix string) string {
	p, err := routing.ParsePrefix(prefix)
	if err != nil {
		return prefix
	}
	if p.Bits > a.cfg.AggBits {
		p = routing.NewPrefix(p.Addr, a.cfg.AggBits)
	}
	return p.String()
}

// evidence renders an observation's evidence row.
func evidence(o Observation) Evidence {
	return Evidence{
		Vantage:   o.Vantage,
		EventID:   o.Event.ID,
		Source:    o.Event.Source,
		Prefix:    o.Event.Prefix,
		StartNs:   o.Event.StartNs,
		EndNs:     o.Event.EndNs,
		TTLDelta:  o.Event.TTLDelta,
		Streams:   o.Event.Streams,
		Replicas:  o.Event.Replicas,
		Truncated: o.Event.Truncated,
		Prov:      o.Event.Prov,
	}
}

// fleetID derives a fleet loop's stable identity from its founding
// observation, the same FNV-1a discipline the daemon's event IDs use:
// replay founds the same clusters from the same observations, so the
// IDs survive restarts.
func fleetID(aggPrefix, vantage, eventID string) string {
	h := fnv.New64a()
	h.Write([]byte(aggPrefix))
	h.Write([]byte{0})
	h.Write([]byte(vantage))
	h.Write([]byte{0})
	h.Write([]byte(eventID))
	return fmt.Sprintf("f%016x", h.Sum64())
}

// vantage returns the named vantage's state, creating it. Callers
// outside the lock.
func (a *Aggregator) vantage(name string) *vantageState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.vantageLocked(name)
}

func (a *Aggregator) vantageLocked(name string) *vantageState {
	vs := a.vantages[name]
	if vs == nil {
		vs = &vantageState{name: name, transports: make(map[string]bool)}
		a.vantages[name] = vs
		a.gVantages.Set(int64(len(a.vantages)))
	}
	return vs
}

func (vs *vantageState) noteTransport(t string) {
	if t != "" {
		vs.transports[t] = true
	}
}

// FleetLoops renders the deduplicated loop set in founding order.
// Vantage lists are sorted; evidence stays in arrival order.
func (a *Aggregator) FleetLoops() []FleetLoop {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FleetLoop, 0, len(a.clusters))
	for _, c := range a.clusters {
		out = append(out, c.render())
	}
	return out
}

func (c *cluster) render() FleetLoop {
	names := make([]string, 0, len(c.vantages))
	for v := range c.vantages {
		names = append(names, v)
	}
	sort.Strings(names)
	ev := make([]Evidence, len(c.evidence))
	copy(ev, c.evidence)
	return FleetLoop{
		ID:           c.id,
		Prefix:       c.prefix,
		TTLDelta:     c.ttlDelta,
		StartNs:      c.startNs,
		EndNs:        c.endNs,
		DurationNs:   c.endNs - c.startNs,
		Vantages:     names,
		Observations: len(c.evidence),
		Evidence:     ev,
	}
}

// Vantages renders the per-vantage standing table, sorted by name.
// Lag is measured against the aggregator's clock at render time and
// mirrored into the per-vantage lag gauge.
func (a *Aggregator) Vantages() []VantageInfo {
	nowNs := a.now().UnixNano()
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.vantages))
	for name := range a.vantages {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]VantageInfo, 0, len(names))
	for _, name := range names {
		vs := a.vantages[name]
		info := VantageInfo{
			Name:           name,
			Transports:     sortedSet(vs.transports),
			Observations:   vs.observations,
			Duplicates:     vs.duplicates,
			LastEventNs:    vs.lastEventNs,
			LastSeenUnixNs: vs.lastSeenNs,
			Cursor:         vs.cursor,
			LastErr:        vs.lastErr,
			SkewNs:         vs.skewNs,
			SkewSamples:    vs.skewSamples,
		}
		if vs.lastSeenNs > 0 && nowNs > vs.lastSeenNs {
			info.LagNs = nowNs - vs.lastSeenNs
			a.cfg.Metrics.Gauge(obs.LabelMetric(obs.MetricAggVantageLagNs, "vantage", name)).Set(info.LagNs)
		}
		if h := a.cfg.Health.Get("vantage:" + name); h != resil.Healthy {
			info.Health = h.String()
		}
		out = append(out, info)
	}
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats answers a fleet stats query: the per-vantage analytics merged
// across the fleet (or one vantage). The collector merges sources in
// sorted name order with exactly associative and commutative sketch
// merges, so the document does not depend on observation arrival
// order across vantages.
func (a *Aggregator) Stats(q analytics.Query) (*analytics.Stats, error) {
	return a.stats.Query(q)
}

// Latency renders the pipeline-latency document, optionally narrowed
// to one vantage and/or one segment.
func (a *Aggregator) Latency(vantage, segment string) *analytics.LatencyStats {
	return a.latency.Snapshot(vantage, segment)
}

// KnownVantage reports whether the aggregator has state for name.
func (a *Aggregator) KnownVantage(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.vantages[name]
	return ok
}

// Counts returns totals for the health document.
func (a *Aggregator) Counts() (observations int64, duplicates int64, fleetLoops int, vantages int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, vs := range a.vantages {
		observations += vs.observations
		duplicates += vs.duplicates
	}
	return observations, duplicates, len(a.clusters), len(a.vantages)
}

// Started returns the construction time (the daemon's uptime base).
func (a *Aggregator) Started() time.Time { return a.started }

// Cursor returns the pull transport's resume position for a vantage.
func (a *Aggregator) Cursor(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if vs := a.vantages[name]; vs != nil {
		return vs.cursor
	}
	return 0
}

// SetCursor records the pull transport's resume position. It only
// becomes durable at the next SaveCheckpoint; a stale cursor merely
// refetches events the seen-set then deduplicates.
func (a *Aggregator) SetCursor(name string, seq int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.vantageLocked(name).cursor = seq
}

// notePollResult records a poll round's outcome for the vantage
// listing and the health ladder.
func (a *Aggregator) notePollResult(name string, err error) {
	a.mu.Lock()
	vs := a.vantageLocked(name)
	if err != nil {
		vs.pollErrs++
		vs.lastErr = err.Error()
	} else {
		vs.lastErr = ""
	}
	a.mu.Unlock()
	if err != nil {
		a.cfg.Metrics.Counter(obs.LabelMetric(obs.MetricAggPollErrors, "vantage", name)).Inc()
		a.cfg.Health.Set("vantage:"+name, resil.Degraded)
	} else {
		a.cfg.Health.Set("vantage:"+name, resil.Healthy)
	}
}

// SaveCheckpoint persists the pull cursors (atomic temp+rename). A
// no-op without a checkpoint path.
func (a *Aggregator) SaveCheckpoint() error {
	if a.cfg.Checkpoint == "" {
		return nil
	}
	a.mu.Lock()
	cursors := make(map[string]int64, len(a.vantages))
	for name, vs := range a.vantages {
		if vs.cursor > 0 {
			cursors[name] = vs.cursor
		}
	}
	a.mu.Unlock()
	return saveCheckpoint(a.cfg.Checkpoint, cursors, a.now().UnixNano())
}

func intAbs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
