package agg

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"loopscope/internal/api"
	"loopscope/internal/serve"
	"loopscope/pkg/loopscope"
)

// fakeDaemon serves a real serve.Ring through the daemon's
// /api/v1/loops contract (envelope, cursor pagination, vantage meta),
// capped at a tiny page size so the poller's multi-page walk is
// actually exercised.
type fakeDaemon struct {
	ring    *serve.Ring
	vantage string
	pageCap int
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/loops", func(w http.ResponseWriter, r *http.Request) {
		limit := f.pageCap
		var cursor int64
		if v := r.URL.Query().Get("cursor"); v != "" {
			cursor, _ = strconv.ParseInt(v, 10, 64)
		}
		page := f.ring.PageAfter(cursor, limit, nil)
		type row struct {
			Seq   int64       `json:"seq"`
			Event serve.Event `json:"event"`
		}
		rows := make([]row, len(page.Events))
		for i := range page.Events {
			rows[i] = row{Seq: page.Seqs[i], Event: page.Events[i]}
		}
		meta := api.Meta{Vantage: f.vantage, Total: &page.Total}
		if page.Next > 0 {
			meta.NextCursor = &page.Next
		}
		api.WriteOK(w, http.StatusOK, map[string]any{"events": rows}, meta)
	})
	return mux
}

func (f *fakeDaemon) publish(prefix, id string, startNs, endNs int64, ttlDelta int) {
	f.ring.Publish(serve.Event{
		ID: id, Source: "tap", Vantage: f.vantage, Prefix: prefix,
		StartNs: startNs, EndNs: endNs, DurationNs: endNs - startNs,
		Streams: 2, Replicas: 8, TTLDelta: ttlDelta,
	})
}

func TestPollWalksPagesAndResumes(t *testing.T) {
	fd := &fakeDaemon{ring: serve.NewRing(64), vantage: "bb1", pageCap: 2}
	for i := 0; i < 5; i++ {
		fd.publish("10.1.2.0/24", "e"+strconv.Itoa(i), sec(int64(i*1000)), sec(int64(i*1000+10)), 3)
	}
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	a := newTestAgg(t, Config{})
	client := loopscope.New(ts.URL)
	target := PollTarget{Name: "target0", URL: ts.URL}
	name, err := a.PollOnce(context.Background(), client, target)
	if err != nil {
		t.Fatalf("PollOnce: %v", err)
	}
	// The daemon's own vantage identity supersedes the target label.
	if name != "bb1" {
		t.Errorf("resolved name = %q, want discovered vantage bb1", name)
	}
	vs := a.Vantages()
	if len(vs) != 1 || vs[0].Name != "bb1" || vs[0].Observations != 5 {
		t.Fatalf("after first poll: vantages = %+v, want bb1 with 5 observations", vs)
	}
	if got := a.Cursor("bb1"); got != 5 {
		t.Errorf("cursor = %d, want 5", got)
	}
	if got := vs[0].Transports; len(got) != 1 || got[0] != TransportPull {
		t.Errorf("transports = %v, want [pull]", got)
	}

	// Steady state: nothing new, nothing re-ingested.
	if _, err := a.PollOnce(context.Background(), client, PollTarget{Name: "bb1", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if vs := a.Vantages(); vs[0].Observations != 5 || vs[0].Duplicates != 0 {
		t.Errorf("steady-state poll changed counts: %+v", vs[0])
	}

	// Two more events arrive; the next round picks up exactly those.
	fd.publish("10.9.9.0/24", "e5", sec(9000), sec(9010), 5)
	fd.publish("10.9.9.0/24", "e6", sec(9010), sec(9020), 5)
	if _, err := a.PollOnce(context.Background(), client, PollTarget{Name: "bb1", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if vs := a.Vantages(); vs[0].Observations != 7 {
		t.Errorf("after catch-up: %d observations, want 7", vs[0].Observations)
	}
	if got := a.Cursor("bb1"); got != 7 {
		t.Errorf("cursor = %d, want 7", got)
	}
}

// A daemon restart resets its ring sequence numbers; the poller
// detects total < cursor, refetches from scratch, and the seen-set
// absorbs the overlap.
func TestPollDaemonRestartResetsCursor(t *testing.T) {
	fd := &fakeDaemon{ring: serve.NewRing(64), vantage: "bb1", pageCap: 100}
	for i := 0; i < 4; i++ {
		fd.publish("10.1.2.0/24", "e"+strconv.Itoa(i), sec(int64(i*1000)), sec(int64(i*1000+10)), 3)
	}
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()
	a := newTestAgg(t, Config{})
	client := loopscope.New(ts.URL)
	if _, err := a.PollOnce(context.Background(), client, PollTarget{Name: "bb1", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if got := a.Cursor("bb1"); got != 4 {
		t.Fatalf("cursor = %d, want 4", got)
	}

	// "Restart": fresh ring, same daemon, two events — one old (same
	// ID, deduped) and one genuinely new.
	fd.ring = serve.NewRing(64)
	fd.publish("10.1.2.0/24", "e3", sec(3000), sec(3010), 3)
	fd.publish("10.8.8.0/24", "new", sec(9000), sec(9010), 4)
	if _, err := a.PollOnce(context.Background(), client, PollTarget{Name: "bb1", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}
	vs := a.Vantages()
	if vs[0].Observations != 5 || vs[0].Duplicates != 1 {
		t.Errorf("after restart refetch: %d obs / %d dups, want 5/1", vs[0].Observations, vs[0].Duplicates)
	}
	if got := a.Cursor("bb1"); got != 2 {
		t.Errorf("cursor = %d, want reset ring's 2", got)
	}
}

// Poll failures degrade the vantage's standing instead of crashing
// the round loop, and recovery clears the error.
func TestPollErrorDegradesVantage(t *testing.T) {
	a := newTestAgg(t, Config{})
	dead := loopscope.New("http://127.0.0.1:1") // nothing listens here
	if _, err := a.PollOnce(context.Background(), dead, PollTarget{Name: "bb1", URL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("want error polling a dead daemon")
	}
	vs := a.Vantages()
	if len(vs) != 1 || vs[0].LastErr == "" {
		t.Fatalf("vantage standing after failed poll = %+v, want lastError set", vs)
	}

	fd := &fakeDaemon{ring: serve.NewRing(8), vantage: "bb1", pageCap: 100}
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()
	if _, err := a.PollOnce(context.Background(), loopscope.New(ts.URL), PollTarget{Name: "bb1", URL: ts.URL}); err != nil {
		t.Fatal(err)
	}
	if vs := a.Vantages(); vs[0].LastErr != "" {
		t.Errorf("lastError survives recovery: %+v", vs[0])
	}
}
