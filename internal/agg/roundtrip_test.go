package agg

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"loopscope/internal/serve"
	"loopscope/pkg/loopscope"
)

// The push transport's schema contract: the JSON the daemon's webhook
// sink emits (serve.Event) must decode losslessly into the client
// mirror (loopscope.Event) the aggregator ingests. A field added to
// one side but not the other fails here.
func TestWebhookPayloadSchemaRoundTrip(t *testing.T) {
	src := serve.Event{
		ID: "abc123", Source: "bb1-tap", Vantage: "bb1", Link: "c1->c2",
		Prefix: "10.1.2.0/24", Seq: 7,
		StartNs: sec(10), EndNs: sec(40), DurationNs: sec(30),
		Streams: 3, Replicas: 42, TTLDelta: 4, Escaped: 1,
		Truncated: true, EmittedAtNs: sec(41),
	}
	buf, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var got loopscope.Event
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	want := loopscope.Event{
		ID: "abc123", Source: "bb1-tap", Vantage: "bb1", Link: "c1->c2",
		Prefix: "10.1.2.0/24", Seq: 7,
		StartNs: sec(10), EndNs: sec(40), DurationNs: sec(30),
		Streams: 3, Replicas: 42, TTLDelta: 4, Escaped: 1,
		Truncated: true, EmittedAtNs: sec(41),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("serve.Event -> loopscope.Event lost fields:\n got %+v\nwant %+v", got, want)
	}
	// And the mirror encodes back to the same document (field-for-field).
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var a, b map[string]any
	json.Unmarshal(buf, &a)
	json.Unmarshal(back, &b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("re-encoded payload drifted:\n serve %s\nclient %s", buf, back)
	}
}

// End to end over the wire: the daemon's actual webhook sink delivers
// into the aggregator's actual ingest endpoint, and the evidence the
// fleet API serves carries the vantage attribution.
func TestWebhookPushIntoAggregator(t *testing.T) {
	a := newTestAgg(t, Config{})
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	hook := serve.NewWebhook(serve.WebhookOptions{
		URL: ts.URL + "/api/v1/ingest", Timeout: 5 * time.Second,
	})
	hook.Publish(serve.Event{
		ID: "push-e2e", Source: "tap3", Vantage: "bb2",
		Prefix: "10.1.2.0/24", StartNs: sec(5), EndNs: sec(25), DurationNs: sec(20),
		Streams: 2, Replicas: 9, TTLDelta: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hook.Close(ctx); err != nil {
		t.Fatalf("webhook drain: %v", err)
	}

	loops := a.FleetLoops()
	if len(loops) != 1 {
		t.Fatalf("got %d fleet loops after webhook push, want 1", len(loops))
	}
	ev := loops[0].Evidence[0]
	if ev.Vantage != "bb2" || ev.EventID != "push-e2e" || ev.Source != "tap3" {
		t.Errorf("evidence = %+v, want bb2/push-e2e/tap3", ev)
	}
	if vs := a.Vantages(); len(vs) != 1 || vs[0].Transports[0] != TransportPush {
		t.Errorf("vantage standing = %+v, want push transport for bb2", vs)
	}
}
