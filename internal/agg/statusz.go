package agg

// The aggregator's human status page, /statusz: the fleet-tier
// counterpart of the daemon's (internal/serve/statusz.go, same visual
// idiom). One glance answers "which vantages are reporting, how far
// behind is each, and where in the pipeline is the time going" — the
// last via the per-(segment, vantage) provenance latency table, whose
// exemplar IDs link straight to the originating daemon's flight
// recorder when the vantage arrived by pull (the poller knows its
// base URL).

import (
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"time"

	"loopscope/internal/analytics"
	"loopscope/internal/resil"
)

var aggStatuszTmpl = template.Must(template.New("agg-statusz").Parse(`<!DOCTYPE html>
<html><head><title>loopscope-agg status</title>
<style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 0.25em 0.75em; text-align: left; }
th { background: #eee; }
.num { text-align: right; }
</style></head><body>
<h1>loopscope-agg</h1>
<p>uptime {{.Uptime}} &middot; {{.Observations}} observations ({{.Duplicates}} duplicates)
 &middot; {{.FleetLoops}} fleet loops from {{.VantageCount}} vantages</p>

{{if .Health}}<h2>component health</h2>
<table>
<tr><th>component</th><th>state</th></tr>
{{range .Health}}<tr><td>{{.Component}}</td><td>{{.State}}</td></tr>{{end}}
</table>{{end}}

<h2>vantages</h2>
<table>
<tr><th>name</th><th>transports</th><th class=num>observations</th><th class=num>duplicates</th><th class=num>lag</th><th class=num>cursor</th><th class=num>clock skew &le;</th><th>health</th><th>last error</th></tr>
{{range .Vantages}}<tr>
<td>{{.Name}}</td><td>{{.Transports}}</td>
<td class=num>{{.Observations}}</td><td class=num>{{.Duplicates}}</td>
<td class=num>{{.Lag}}</td><td class=num>{{if .Cursor}}{{.Cursor}}{{end}}</td>
<td class=num>{{.Skew}}</td><td>{{.Health}}</td><td>{{.LastErr}}</td>
</tr>{{end}}
</table>

<h2>pipeline latency</h2>
{{if .Latency}}<table>
<tr><th>segment</th><th>vantage</th><th class=num>count</th><th class=num>clamped</th><th class=num>p50</th><th class=num>p90</th><th class=num>p99</th><th>distribution</th><th>slowest events</th></tr>
{{range .Latency}}<tr>
<td>{{.Segment}}</td><td>{{.Vantage}}</td>
<td class=num>{{.Count}}</td><td class=num>{{if .Clamped}}{{.Clamped}}{{end}}</td>
<td class=num>{{.P50}}</td><td class=num>{{.P90}}</td><td class=num>{{.P99}}</td>
<td>{{.Spark}}</td><td>{{.Exemplars}}</td>
</tr>{{end}}
</table>
<p>cross-process segments (send_ingest, publish_ingest, ingest_cluster, detect_cluster) include
inter-host clock offset; clamped counts negative deltas excluded from the sketches.</p>
{{else}}<p>no provenance-carrying observations yet</p>{{end}}
</body></html>
`))

type aggStatuszVantage struct {
	Name       string
	Transports string
	// Observations etc. mirror the vantage listing; Lag and Skew are
	// pre-formatted durations.
	Observations int64
	Duplicates   int64
	Lag          string
	Cursor       int64
	Skew         string
	Health       string
	LastErr      string
}

type aggStatuszHealth struct {
	Component string
	State     string
}

type aggStatuszLatency struct {
	Segment   string
	Vantage   string
	Count     uint64
	Clamped   uint64
	P50       string
	P90       string
	P99       string
	Spark     string
	Exemplars string
}

// aggSparkRunes duplicate the daemon's sparkline alphabet (the serve
// package is a sibling, not a dependency of agg's status page).
var aggSparkRunes = []rune("▁▂▃▄▅▆▇█")

func aggSpark(buckets []analytics.Bucket) string {
	var max uint64
	for _, b := range buckets {
		if b.Count > max {
			max = b.Count
		}
	}
	if max == 0 {
		return ""
	}
	out := make([]rune, len(buckets))
	for i, b := range buckets {
		out[i] = aggSparkRunes[int(b.Count*uint64(len(aggSparkRunes)-1)/max)]
	}
	return string(out)
}

// statuszDur renders nanoseconds as a compact human duration.
func statuszDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// handleStatusz renders the aggregator's status page.
func (a *Aggregator) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	observations, duplicates, fleetLoops, vantageCount := a.Counts()

	var vrows []aggStatuszVantage
	for _, v := range a.Vantages() {
		row := aggStatuszVantage{
			Name:         v.Name,
			Observations: v.Observations,
			Duplicates:   v.Duplicates,
			Cursor:       v.Cursor,
			Health:       v.Health,
			LastErr:      v.LastErr,
		}
		for i, t := range v.Transports {
			if i > 0 {
				row.Transports += "+"
			}
			row.Transports += t
		}
		if v.LagNs > 0 {
			row.Lag = time.Duration(v.LagNs).Round(time.Millisecond).String()
		}
		if v.SkewSamples > 0 {
			// The running-min transport delta bounds the clock offset
			// from above; negative means the vantage clock runs ahead.
			row.Skew = statuszDur(v.SkewNs)
		}
		vrows = append(vrows, row)
	}

	var lrows []aggStatuszLatency
	for _, seg := range a.Latency("", "").Segments {
		row := aggStatuszLatency{
			Segment: seg.Segment,
			Vantage: seg.Vantage,
			Count:   seg.Count,
			Clamped: seg.Clamped,
			P50:     statuszDur(seg.Quantiles["p50"]),
			P90:     statuszDur(seg.Quantiles["p90"]),
			P99:     statuszDur(seg.Quantiles["p99"]),
			Spark:   aggSpark(seg.Buckets),
		}
		for i, e := range seg.Exemplars {
			if i > 0 {
				row.Exemplars += " "
			}
			row.Exemplars += e.EventID + "=" + statuszDur(e.Ns)
		}
		lrows = append(lrows, row)
	}

	var health []aggStatuszHealth
	for component, state := range a.cfg.Health.Snapshot() {
		if state == resil.Healthy.String() {
			continue
		}
		health = append(health, aggStatuszHealth{Component: component, State: state})
	}
	sort.Slice(health, func(i, j int) bool { return health[i].Component < health[j].Component })

	data := struct {
		Uptime       time.Duration
		Observations int64
		Duplicates   int64
		FleetLoops   string
		VantageCount int
		Health       []aggStatuszHealth
		Vantages     []aggStatuszVantage
		Latency      []aggStatuszLatency
	}{
		Uptime:       a.now().Sub(a.started).Round(time.Second),
		Observations: observations,
		Duplicates:   duplicates,
		FleetLoops:   strconv.Itoa(fleetLoops),
		VantageCount: vantageCount,
		Health:       health,
		Vantages:     vrows,
		Latency:      lrows,
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := aggStatuszTmpl.Execute(w, data); err != nil {
		a.log.Error("statusz render failed", "err", err)
	}
}
