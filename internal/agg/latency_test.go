package agg

import (
	"encoding/json"
	"testing"
	"time"

	"loopscope/internal/obs"
	"loopscope/internal/obs/provenance"
	"loopscope/pkg/loopscope"
)

// obsProv builds an observation whose event carries daemon-side
// provenance stamps offset back from the pinned ingest clock, so the
// cross-process segments come out positive unless the test says
// otherwise.
func obsProv(vantage, prefix, id string, startNs, endNs int64, publishedAt time.Time) Observation {
	o := obs1(vantage, prefix, id, startNs, endNs, 3)
	p := publishedAt.UnixNano()
	o.Event.Prov = &loopscope.Provenance{
		DetectedNs:  p - int64(2*time.Millisecond),
		PublishedNs: p,
		JournaledNs: p + int64(time.Millisecond),
	}
	return o
}

func latencyJSON(t *testing.T, a *Aggregator) string {
	t.Helper()
	buf, err := json.Marshal(a.Latency("", ""))
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestProvenanceCloseOut pins the close-out contract: the aggregator
// stamps ingested and clustered with the journaled arrival stamp, the
// evidence rows carry the completed record, the latency table gains
// the cross-process segments, and the vantage listing shows a skew
// estimate.
func TestProvenanceCloseOut(t *testing.T) {
	now := pinnedNow()
	a := newTestAgg(t, Config{Now: now})
	o := obsProv("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), now().Add(-40*time.Millisecond))
	if _, err := a.Ingest(o); err != nil {
		t.Fatal(err)
	}
	loops := a.FleetLoops()
	if len(loops) != 1 || len(loops[0].Evidence) != 1 {
		t.Fatalf("unexpected fleet state: %+v", loops)
	}
	p := loops[0].Evidence[0].Prov
	if p == nil {
		t.Fatal("evidence lost the provenance record")
	}
	wantArrival := now().UnixNano()
	if p.IngestedNs != wantArrival || p.ClusteredNs != wantArrival {
		t.Errorf("close-out stamps = %d/%d, want both %d", p.IngestedNs, p.ClusteredNs, wantArrival)
	}
	if p.PublishedNs != o.Event.Prov.PublishedNs {
		t.Errorf("daemon-side stamps rewritten: %+v", p)
	}
	if o.Event.Prov.IngestedNs != 0 {
		t.Error("close-out mutated the caller's record (aliasing)")
	}

	st := a.Latency("", "")
	got := map[string]uint64{}
	for _, row := range st.Segments {
		if row.Vantage != "bb1" {
			t.Errorf("unexpected vantage row %+v", row)
		}
		got[row.Segment] = row.Count
	}
	for _, seg := range []string{
		provenance.SegDetectPublish, provenance.SegPublishJournal,
		provenance.SegPublishIngest, provenance.SegIngestCluster, provenance.SegDetectCluster,
	} {
		if got[seg] != 1 {
			t.Errorf("segment %s count = %d, want 1 (rows: %v)", seg, got[seg], got)
		}
	}
	if _, ok := got[provenance.SegSendIngest]; ok {
		t.Error("send_ingest present without a webhook stamp")
	}

	vs := a.Vantages()
	if len(vs) != 1 || vs[0].SkewSamples != 1 {
		t.Fatalf("vantage skew not surfaced: %+v", vs)
	}
	if want := int64(40 * time.Millisecond); vs[0].SkewNs != want {
		t.Errorf("skew estimate = %d, want %d (transport delta)", vs[0].SkewNs, want)
	}

	// The exemplar ID is the event ID — the daemon-side trail handle.
	for _, row := range st.Segments {
		if len(row.Exemplars) != 1 || row.Exemplars[0].EventID != "e1" {
			t.Errorf("segment %s exemplars = %+v, want [e1]", row.Segment, row.Exemplars)
		}
	}
}

// TestProvenanceSkewClampedAndCounted is the satellite fix: a vantage
// whose clock runs ahead of the aggregator produces negative
// cross-process deltas, which must be clamped out of the sketches,
// counted in loopscope_provenance_skew_total, and reflected as a
// negative skew estimate — never ingested as bogus near-zero
// latencies.
func TestProvenanceSkewClampedAndCounted(t *testing.T) {
	now := pinnedNow()
	reg := obs.NewRegistry()
	a := newTestAgg(t, Config{Now: now, Metrics: reg})
	// Published "in the future": 300ms ahead of the aggregator's clock.
	o := obsProv("bb9", "10.1.2.0/24", "e1", sec(10), sec(40), now().Add(300*time.Millisecond))
	if _, err := a.Ingest(o); err != nil {
		t.Fatal(err)
	}
	for _, row := range a.Latency("", "").Segments {
		switch row.Segment {
		case provenance.SegPublishIngest, provenance.SegDetectCluster:
			if row.Count != 0 || row.Clamped != 1 {
				t.Errorf("%s: count=%d clamped=%d, want 0/1", row.Segment, row.Count, row.Clamped)
			}
			if len(row.Exemplars) != 0 {
				t.Errorf("%s: clamped observation produced exemplars %+v", row.Segment, row.Exemplars)
			}
		case provenance.SegDetectPublish, provenance.SegPublishJournal:
			if row.Count != 1 || row.Clamped != 0 {
				t.Errorf("%s: same-process segment corrupted: count=%d clamped=%d", row.Segment, row.Count, row.Clamped)
			}
		}
	}
	if v := reg.Counter(obs.LabelMetric(obs.MetricProvenanceSkewTotal, "vantage", "bb9")).Value(); v != 2 {
		t.Errorf("skew counter = %d, want 2 (publish_ingest + detect_cluster)", v)
	}
	vs := a.Vantages()
	if len(vs) != 1 || vs[0].SkewNs >= 0 || vs[0].SkewSamples != 1 {
		t.Errorf("vantage skew = %+v, want negative estimate with 1 sample", vs)
	}
}

// TestLatencyReplayByteIdentical is the acceptance criterion for the
// tentpole's durability story: an aggregator rebuilt from the journal
// after kill -9 (no Close) must serve a byte-identical latency
// document and the same skew estimates — nothing in the close-out may
// read a clock.
func TestLatencyReplayByteIdentical(t *testing.T) {
	now := pinnedNow()
	dir := t.TempDir()
	journal := dir + "/fleet.jsonl"
	a1 := newTestAgg(t, Config{Journal: journal, Now: now})
	for i, o := range []Observation{
		obsProv("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), now().Add(-40*time.Millisecond)),
		obsProv("bb2", "10.1.2.0/24", "e2", sec(12), sec(41), now().Add(-70*time.Millisecond)),
		obsProv("bb2", "10.9.9.0/24", "e3", sec(100), sec(130), now().Add(90*time.Millisecond)), // skewed
		obsProv("bb1", "10.9.9.0/24", "e4", sec(101), sec(131), now().Add(-25*time.Millisecond)),
	} {
		if _, err := a1.Ingest(o); err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
	}
	want := latencyJSON(t, a1)
	wantVantages, _ := json.Marshal(a1.Vantages())

	// No Close — the journal handle is abandoned, exactly like kill -9.
	// The replayed aggregator gets a *different* (advanced) clock to
	// prove the close-out never reads it.
	later := func() time.Time { return pinnedNow()().Add(time.Hour) }
	a2 := newTestAgg(t, Config{Journal: journal, Now: later})
	if got := latencyJSON(t, a2); got != want {
		t.Errorf("replayed latency document differs:\n got %s\nwant %s", got, want)
	}
	gotVantages, _ := json.Marshal(a2.Vantages())
	// The vantage table includes render-time lag, which legitimately
	// depends on the clock; compare only the skew fields.
	var w, g []VantageInfo
	json.Unmarshal(wantVantages, &w)
	json.Unmarshal(gotVantages, &g)
	if len(w) != len(g) {
		t.Fatalf("vantage tables differ in size: %d vs %d", len(w), len(g))
	}
	for i := range w {
		if w[i].SkewNs != g[i].SkewNs || w[i].SkewSamples != g[i].SkewSamples {
			t.Errorf("vantage %s skew differs after replay: %d/%d vs %d/%d",
				w[i].Name, w[i].SkewNs, w[i].SkewSamples, g[i].SkewNs, g[i].SkewSamples)
		}
	}
}

// TestProvenanceAbsentEventsStillCluster guards the mixed-fleet path:
// events from pre-provenance daemons (no prov field) must cluster
// normally and simply not feed the latency table.
func TestProvenanceAbsentEventsStillCluster(t *testing.T) {
	a := newTestAgg(t, Config{})
	if _, err := a.Ingest(obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3)); err != nil {
		t.Fatal(err)
	}
	if got := len(a.FleetLoops()); got != 1 {
		t.Fatalf("got %d fleet loops, want 1", got)
	}
	if st := a.Latency("", ""); len(st.Segments) != 0 {
		t.Fatalf("latency table fed by a prov-less event: %+v", st.Segments)
	}
}
