package agg

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"loopscope/internal/analytics"
	"loopscope/internal/api"
	"loopscope/internal/obs/provenance"
	"loopscope/internal/resil"
	"loopscope/pkg/loopscope"
)

// The aggregator's HTTP surface follows the daemon's /api/v1
// conventions exactly — same envelope, same error object, same strict
// query-parameter contract (internal/api owns all three) — so every
// v1 consumer, including pkg/loopscope and lsq, works against both
// tiers without special-casing.

// fleetLoopsMaxLimit caps one GET /api/v1/fleet/loops response.
const fleetLoopsMaxLimit = 1000

// ingestBodyMax bounds a webhook POST body. One loop event is under a
// kilobyte; a megabyte is paranoid headroom.
const ingestBodyMax = 1 << 20

// Handler returns the aggregator's HTTP API. Serve it with
// obs.StartHandler for the loopback-by-default bind policy.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/health", a.v1Health)
	mux.HandleFunc("GET /api/v1/fleet/loops", a.v1FleetLoops)
	mux.HandleFunc("GET /api/v1/fleet/vantages", a.v1FleetVantages)
	mux.HandleFunc("GET /api/v1/fleet/stats", a.v1FleetStats)
	mux.HandleFunc("GET /api/v1/fleet/latency", a.v1FleetLatency)
	mux.HandleFunc("GET /statusz", a.handleStatusz)
	mux.HandleFunc("POST /api/v1/ingest", a.v1Ingest)
	if a.cfg.Metrics != nil {
		mux.Handle("/", a.cfg.Metrics.Handler())
	}
	return mux
}

// v1Health serves GET /api/v1/health: liveness plus fleet totals.
func (a *Aggregator) v1Health(w http.ResponseWriter, r *http.Request) {
	if !api.StrictParams(w, r) {
		return
	}
	observations, duplicates, fleetLoops, vantages := a.Counts()
	status := "ok"
	if worst := a.cfg.Health.Worst(); worst != resil.Healthy {
		status = worst.String()
	}
	body := map[string]any{
		"status":       status,
		"uptimeS":      int64(a.now().Sub(a.started).Seconds()),
		"vantages":     vantages,
		"observations": observations,
		"duplicates":   duplicates,
		"fleetLoops":   fleetLoops,
	}
	if snap := a.cfg.Health.Snapshot(); len(snap) > 0 {
		body["health"] = snap
	}
	api.WriteOK(w, http.StatusOK, body, api.Meta{})
}

// v1FleetLoops serves GET /api/v1/fleet/loops?limit=&prefix=: the
// deduplicated fleet loop set in founding order. limit keeps the
// newest N (by founding); prefix filters on the aggregated
// correlation prefix.
func (a *Aggregator) v1FleetLoops(w http.ResponseWriter, r *http.Request) {
	if !api.StrictParams(w, r, "limit", "prefix") {
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > fleetLoopsMaxLimit {
			api.WriteError(w, http.StatusBadRequest, api.ErrBadParam,
				fmt.Sprintf("limit must be an integer in 1..%d, got %q", fleetLoopsMaxLimit, v))
			return
		}
		limit = parsed
	}
	loops := a.FleetLoops()
	if prefix := q.Get("prefix"); prefix != "" {
		kept := loops[:0]
		for _, fl := range loops {
			if fl.Prefix == prefix {
				kept = append(kept, fl)
			}
		}
		loops = kept
	}
	total := int64(len(loops))
	if limit > 0 && len(loops) > limit {
		loops = loops[len(loops)-limit:]
	}
	api.WriteOK(w, http.StatusOK, map[string]any{"loops": loops}, api.Meta{Total: &total})
}

// v1FleetVantages serves GET /api/v1/fleet/vantages.
func (a *Aggregator) v1FleetVantages(w http.ResponseWriter, r *http.Request) {
	if !api.StrictParams(w, r) {
		return
	}
	api.WriteOK(w, http.StatusOK, map[string]any{"vantages": a.Vantages()}, api.Meta{})
}

// v1FleetStats serves GET /api/v1/fleet/stats?window=&vantage=&metric=:
// the per-vantage analytics merged fleet-wide (the vantage param
// narrows to one daemon). Mirrors the daemon's /api/v1/stats error
// discipline: unknown metric and bad window are bad_param, an unknown
// vantage is not_found, a known-but-silent one would be empty stats —
// but the aggregator only learns names from observations, so known
// always has data.
func (a *Aggregator) v1FleetStats(w http.ResponseWriter, r *http.Request) {
	if !api.StrictParams(w, r, "window", "vantage", "metric") {
		return
	}
	q := r.URL.Query()
	window, err := analytics.ParseWindow(q.Get("window"))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadParam, err.Error())
		return
	}
	vantage := q.Get("vantage")
	if vantage != "" && !a.KnownVantage(vantage) {
		api.WriteError(w, http.StatusNotFound, api.ErrNotFound, "unknown vantage "+vantage)
		return
	}
	st, err := a.Stats(analytics.Query{Window: window, Source: vantage, Metric: q.Get("metric")})
	if err != nil {
		switch err.(type) {
		case *analytics.ErrUnknownMetric:
			api.WriteError(w, http.StatusBadRequest, api.ErrBadParam, err.Error())
		case *analytics.ErrUnknownSource:
			api.WriteOK(w, http.StatusOK, analytics.EmptyStats(q.Get("window"), vantage), api.Meta{})
		default:
			api.WriteError(w, http.StatusNotFound, api.ErrDisabled, err.Error())
		}
		return
	}
	api.WriteOK(w, http.StatusOK, st, api.Meta{})
}

// v1FleetLatency serves GET /api/v1/fleet/latency?vantage=&segment=:
// the per-(pipeline segment, vantage) provenance latency table, in
// canonical segment order with vantages sorted within a segment. An
// unknown vantage is not_found (same discipline as fleet/stats); an
// unknown segment name is bad_param. The document is a deterministic
// render of journal-derived state, so two aggregators replaying the
// same journal serve byte-identical bodies.
func (a *Aggregator) v1FleetLatency(w http.ResponseWriter, r *http.Request) {
	if !api.StrictParams(w, r, "vantage", "segment") {
		return
	}
	q := r.URL.Query()
	vantage := q.Get("vantage")
	if vantage != "" && !a.KnownVantage(vantage) {
		api.WriteError(w, http.StatusNotFound, api.ErrNotFound, "unknown vantage "+vantage)
		return
	}
	segment := q.Get("segment")
	if segment != "" && provenance.SegmentRank(segment) == len(provenance.Segments) {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadParam,
			fmt.Sprintf("unknown segment %q (one of %v)", segment, provenance.Segments))
		return
	}
	api.WriteOK(w, http.StatusOK, a.Latency(vantage, segment), api.Meta{})
}

// ingestResult is POST /api/v1/ingest's response body.
type ingestResult struct {
	ID string `json:"id"`
	// Accepted is false for a duplicate — already-seen deliveries are
	// a success for an at-least-once webhook sender, not an error.
	Accepted bool   `json:"accepted"`
	Vantage  string `json:"vantage"`
}

// v1Ingest is the push transport: the webhook target loopscoped's
// -webhook flag POSTs loop events at. The body is one loop event (the
// daemon's journal/webhook schema); the vantage attribution comes
// from the event's vantage stamp, falling back to its source name.
func (a *Aggregator) v1Ingest(w http.ResponseWriter, r *http.Request) {
	if !api.StrictParams(w, r) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, ingestBodyMax+1))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadParam, "reading body: "+err.Error())
		return
	}
	if len(body) > ingestBodyMax {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadParam,
			fmt.Sprintf("body exceeds %d bytes", ingestBodyMax))
		return
	}
	var ev loopscope.Event
	if err := json.Unmarshal(body, &ev); err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadParam, "body is not a loop event: "+err.Error())
		return
	}
	o := Observation{Transport: TransportPush, Event: ev}
	accepted, err := a.Ingest(o)
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, api.ErrBadParam, err.Error())
		return
	}
	vantage := ev.Vantage
	if vantage == "" {
		vantage = ev.Source
	}
	api.WriteOK(w, http.StatusOK, ingestResult{ID: ev.ID, Accepted: accepted, Vantage: vantage}, api.Meta{})
}
