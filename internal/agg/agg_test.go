package agg

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"loopscope/internal/analytics"
	"loopscope/pkg/loopscope"
)

// pinnedNow returns a frozen clock so window placement, arrival
// stamps, and stats documents are reproducible.
func pinnedNow() func() time.Time {
	base := time.Unix(1_700_000_000, 0)
	return func() time.Time { return base }
}

// mkEvent builds a loop event as a vantage's daemon would publish it.
func mkEvent(vantage, source, prefix, id string, startNs, endNs int64, ttlDelta int) loopscope.Event {
	return loopscope.Event{
		ID:          id,
		Source:      source,
		Vantage:     vantage,
		Prefix:      prefix,
		StartNs:     startNs,
		EndNs:       endNs,
		DurationNs:  endNs - startNs,
		Streams:     2,
		Replicas:    10,
		TTLDelta:    ttlDelta,
		EmittedAtNs: endNs,
	}
}

func obs1(vantage, prefix, id string, startNs, endNs int64, ttlDelta int) Observation {
	return Observation{Vantage: vantage, Transport: TransportPush,
		Event: mkEvent(vantage, "tap", prefix, id, startNs, endNs, ttlDelta)}
}

func newTestAgg(t *testing.T, cfg Config) *Aggregator {
	t.Helper()
	if cfg.Now == nil {
		cfg.Now = pinnedNow()
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// sec converts seconds on the trace clock to nanoseconds.
func sec(s int64) int64 { return s * int64(time.Second) }

// Three vantages observing one loop (same /24, same TTL delta,
// overlapping windows) must collapse into a single fleet loop with
// all three attributions, and redelivery must be suppressed.
func TestCrossVantageDedup(t *testing.T) {
	a := newTestAgg(t, Config{})
	observations := []Observation{
		obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3),
		obs1("bb2", "10.1.2.0/24", "e2", sec(12), sec(41), 3),
		obs1("bb3", "10.1.2.0/24", "e3", sec(9), sec(38), 3),
	}
	for _, o := range observations {
		accepted, err := a.Ingest(o)
		if err != nil || !accepted {
			t.Fatalf("Ingest(%s) = %v, %v; want accepted", o.Vantage, accepted, err)
		}
	}
	// Redeliver each observation once (the at-least-once transports do).
	for _, o := range observations {
		accepted, err := a.Ingest(o)
		if err != nil || accepted {
			t.Fatalf("redelivered Ingest(%s) = %v, %v; want duplicate", o.Vantage, accepted, err)
		}
	}
	loops := a.FleetLoops()
	if len(loops) != 1 {
		t.Fatalf("FleetLoops: got %d clusters, want 1: %+v", len(loops), loops)
	}
	fl := loops[0]
	if want := []string{"bb1", "bb2", "bb3"}; !reflect.DeepEqual(fl.Vantages, want) {
		t.Errorf("vantages = %v, want %v", fl.Vantages, want)
	}
	if fl.Observations != 3 || len(fl.Evidence) != 3 {
		t.Errorf("observations = %d, evidence = %d, want 3/3", fl.Observations, len(fl.Evidence))
	}
	if fl.StartNs != sec(9) || fl.EndNs != sec(41) {
		t.Errorf("window = [%d, %d], want union [%d, %d]", fl.StartNs, fl.EndNs, sec(9), sec(41))
	}
	if fl.Prefix != "10.1.2.0/24" || fl.TTLDelta != 3 {
		t.Errorf("key = %s/%d, want 10.1.2.0/24 delta 3", fl.Prefix, fl.TTLDelta)
	}
}

// Observations that differ in aggregated prefix, TTL delta, or
// disjoint-in-time windows stay separate clusters.
func TestDistinctLoopsStaySeparate(t *testing.T) {
	a := newTestAgg(t, Config{})
	for _, o := range []Observation{
		obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3),
		obs1("bb2", "10.9.9.0/24", "e2", sec(10), sec(40), 3),   // other prefix
		obs1("bb3", "10.1.2.0/24", "e3", sec(10), sec(40), 7),   // other cycle length
		obs1("bb1", "10.1.2.0/24", "e4", sec(500), sec(520), 3), // same loop shape, much later
	} {
		if _, err := a.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	if loops := a.FleetLoops(); len(loops) != 4 {
		t.Fatalf("got %d clusters, want 4: %+v", len(loops), loops)
	}
}

// Host-granular and net-granular reports of the same destination
// correlate once aggregated to AggBits.
func TestPrefixAggregation(t *testing.T) {
	a := newTestAgg(t, Config{AggBits: 24})
	if _, err := a.Ingest(obs1("bb1", "10.1.2.55/32", "e1", sec(10), sec(40), 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest(obs1("bb2", "10.1.2.0/24", "e2", sec(11), sec(39), 3)); err != nil {
		t.Fatal(err)
	}
	loops := a.FleetLoops()
	if len(loops) != 1 {
		t.Fatalf("got %d clusters, want 1", len(loops))
	}
	if loops[0].Prefix != "10.1.2.0/24" {
		t.Errorf("aggregated prefix = %q, want 10.1.2.0/24", loops[0].Prefix)
	}
	// The evidence keeps the original granularity.
	if loops[0].Evidence[0].Prefix != "10.1.2.55/32" {
		t.Errorf("evidence prefix = %q, want the vantage's own 10.1.2.55/32", loops[0].Evidence[0].Prefix)
	}
}

// TTLSlack admits near-miss deltas; zero slack (default) does not.
func TestTTLSlack(t *testing.T) {
	strict := newTestAgg(t, Config{})
	strict.Ingest(obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3))
	strict.Ingest(obs1("bb2", "10.1.2.0/24", "e2", sec(11), sec(39), 4))
	if got := len(strict.FleetLoops()); got != 2 {
		t.Errorf("slack 0: got %d clusters, want 2", got)
	}
	loose := newTestAgg(t, Config{TTLSlack: 1})
	loose.Ingest(obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3))
	loose.Ingest(obs1("bb2", "10.1.2.0/24", "e2", sec(11), sec(39), 4))
	if got := len(loose.FleetLoops()); got != 1 {
		t.Errorf("slack 1: got %d clusters, want 1", got)
	}
}

// Restarting from the journal must reproduce the exact fleet loop set
// and fleet statistics — the crash-consistency acceptance criterion.
func TestJournalReplayReproducesState(t *testing.T) {
	dir := t.TempDir()
	journal := dir + "/fleet.jsonl"
	a1 := newTestAgg(t, Config{Journal: journal})
	seed := []Observation{
		obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3),
		obs1("bb2", "10.1.2.0/24", "e2", sec(12), sec(41), 3),
		obs1("bb1", "10.9.9.0/24", "e3", sec(100), sec(130), 5),
		obs1("bb3", "10.1.2.0/24", "e4", sec(9), sec(38), 3),
		obs1("bb2", "10.9.9.0/24", "e5", sec(101), sec(131), 5),
	}
	for _, o := range seed {
		if _, err := a1.Ingest(o); err != nil {
			t.Fatal(err)
		}
	}
	wantLoops := a1.FleetLoops()
	wantStats := statsJSON(t, a1)

	// No Close: the append handle stays open, exactly like kill -9.
	a2 := newTestAgg(t, Config{Journal: journal})
	if gotLoops := a2.FleetLoops(); !reflect.DeepEqual(gotLoops, wantLoops) {
		t.Errorf("replayed fleet loops differ:\n got %+v\nwant %+v", gotLoops, wantLoops)
	}
	if gotStats := statsJSON(t, a2); gotStats != wantStats {
		t.Errorf("replayed fleet stats differ:\n got %s\nwant %s", gotStats, wantStats)
	}
	// Replay also re-arms dedup: redelivering a journaled observation
	// is suppressed.
	if accepted, err := a2.Ingest(seed[0]); err != nil || accepted {
		t.Errorf("post-replay redelivery = %v, %v; want duplicate", accepted, err)
	}
}

func statsJSON(t *testing.T, a *Aggregator) string {
	t.Helper()
	st, err := a.Stats(analytics.Query{})
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// A torn trailing line (kill -9 mid-append) is quarantined, and the
// complete lines replay.
func TestTornJournalTailQuarantined(t *testing.T) {
	dir := t.TempDir()
	journal := dir + "/fleet.jsonl"
	good, err := json.Marshal(obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, append(good, "\n{\"vantage\":\"bb2\",\"ev"...), 0o644); err != nil {
		t.Fatal(err)
	}
	a := newTestAgg(t, Config{Journal: journal})
	if got := len(a.FleetLoops()); got != 1 {
		t.Fatalf("got %d fleet loops after torn-tail repair, want 1", got)
	}
	if _, err := os.Stat(journal + ".quarantine"); err != nil {
		t.Errorf("quarantine sidecar missing: %v", err)
	}
}

// A corrupt complete line costs that observation, not the journal.
func TestJournalBadLineSkipped(t *testing.T) {
	dir := t.TempDir()
	journal := dir + "/fleet.jsonl"
	good, err := json.Marshal(obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3))
	if err != nil {
		t.Fatal(err)
	}
	body := "not json at all\n" + string(good) + "\n{\"vantage\":\"\",\"event\":{}}\n"
	if err := os.WriteFile(journal, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	a := newTestAgg(t, Config{Journal: journal})
	if got := len(a.FleetLoops()); got != 1 {
		t.Fatalf("got %d fleet loops, want 1", got)
	}
}

// Fleet statistics must not depend on the order observations arrive
// across vantages: the per-vantage sketches merge associatively and
// commutatively in sorted vantage order, so any arrival interleaving
// renders the identical stats document. This is the merge-tree
// independence property the analytics layer guarantees, re-pinned at
// the fleet tier.
func TestFleetStatsArrivalOrderIndependent(t *testing.T) {
	base := []Observation{
		obs1("bb1", "10.1.2.0/24", "e1", sec(10), sec(40), 3),
		obs1("bb2", "10.1.2.0/24", "e2", sec(12), sec(41), 3),
		obs1("bb3", "10.1.2.0/24", "e3", sec(9), sec(38), 3),
		obs1("bb1", "10.9.9.0/24", "e4", sec(100), sec(130), 5),
		obs1("bb2", "10.9.9.0/24", "e5", sec(101), sec(131), 5),
		obs1("bb3", "10.7.7.0/24", "e6", sec(200), sec(260), 7),
	}
	orders := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{2, 0, 4, 1, 5, 3},
		{3, 5, 1, 0, 2, 4},
	}
	var want string
	for i, order := range orders {
		a := newTestAgg(t, Config{})
		for _, idx := range order {
			if _, err := a.Ingest(base[idx]); err != nil {
				t.Fatal(err)
			}
		}
		got := statsJSON(t, a)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("order %v renders different fleet stats:\n got %s\nwant %s", order, got, want)
		}
	}
}

// Pull cursors survive the atomic checkpoint; a corrupt checkpoint is
// quarantined and polling starts over (safe: dedup absorbs refetch).
func TestCursorCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp := dir + "/cursors.json"
	a1 := newTestAgg(t, Config{Checkpoint: cp})
	a1.SetCursor("bb1", 17)
	a1.SetCursor("bb2", 5)
	if err := a1.SaveCheckpoint(); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	a2 := newTestAgg(t, Config{Checkpoint: cp})
	if got := a2.Cursor("bb1"); got != 17 {
		t.Errorf("bb1 cursor = %d, want 17", got)
	}
	if got := a2.Cursor("bb2"); got != 5 {
		t.Errorf("bb2 cursor = %d, want 5", got)
	}

	if err := os.WriteFile(cp, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	a3 := newTestAgg(t, Config{Checkpoint: cp})
	if got := a3.Cursor("bb1"); got != 0 {
		t.Errorf("cursor from corrupt checkpoint = %d, want 0", got)
	}
	if _, err := os.Stat(cp + ".corrupt"); err != nil {
		t.Errorf("corrupt sidecar missing: %v", err)
	}
}

// The vantage table aggregates per-daemon standing.
func TestVantageTable(t *testing.T) {
	a := newTestAgg(t, Config{})
	a.Ingest(obs1("bb2", "10.1.2.0/24", "e1", sec(10), sec(40), 3))
	a.Ingest(obs1("bb1", "10.1.2.0/24", "e2", sec(12), sec(41), 3))
	a.Ingest(obs1("bb1", "10.1.2.0/24", "e2", sec(12), sec(41), 3)) // dup
	vs := a.Vantages()
	if len(vs) != 2 || vs[0].Name != "bb1" || vs[1].Name != "bb2" {
		t.Fatalf("vantages = %+v, want sorted [bb1 bb2]", vs)
	}
	if vs[0].Observations != 1 || vs[0].Duplicates != 1 {
		t.Errorf("bb1 = %d obs / %d dups, want 1/1", vs[0].Observations, vs[0].Duplicates)
	}
	if got := vs[0].Transports; len(got) != 1 || got[0] != TransportPush {
		t.Errorf("bb1 transports = %v, want [push]", got)
	}
}

// Observations missing identity are rejected, and the vantage
// attribution falls back event vantage -> event source.
func TestIngestValidation(t *testing.T) {
	a := newTestAgg(t, Config{})
	if _, err := a.Ingest(Observation{Event: loopscope.Event{Prefix: "10.0.0.0/24"}}); err == nil {
		t.Error("want error for observation without vantage or ID")
	}
	ev := mkEvent("", "tap7", "10.1.2.0/24", "e1", sec(1), sec(2), 3)
	if _, err := a.Ingest(Observation{Event: ev}); err != nil {
		t.Fatalf("source fallback rejected: %v", err)
	}
	if vs := a.Vantages(); len(vs) != 1 || vs[0].Name != "tap7" {
		t.Errorf("vantages = %+v, want attribution to source tap7", vs)
	}
}
