package agg

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/netsim"
	"loopscope/internal/obs/flight"
	"loopscope/internal/scenario"
	"loopscope/pkg/loopscope"
)

// The fleet tier's end-to-end acceptance check, against netsim ground
// truth: three taps around one pocket's loop cycle each capture the
// same injected loop, each vantage's detector reports it
// independently, and the aggregator must collapse the three reports
// into exactly one FleetLoop carrying all three vantage attributions.
// Measured against the simulator's ground-truth loop windows, dedup
// precision and recall are both required to be 1.0, and a kill -9
// restart (journal replay, no Close) must reproduce the identical
// fleet loop set.
func TestClusterDedupPrecisionRecall(t *testing.T) {
	if testing.Short() {
		t.Skip("full backbone simulation")
	}
	spec := scenario.Spec{
		Name:             "cluster",
		Seed:             7,
		Duration:         90 * time.Second,
		PacketsPerSecond: 400,
		StablePrefixes:   8,
		Pockets: []scenario.PocketSpec{
			// One Delta-3 pocket: a three-link cycle, so three taps
			// can each see every looping packet once per revolution.
			{Delta: 3, Prefixes: 1, Failures: 1, RepairAfter: 25 * time.Second},
		},
	}
	const vantages = 3
	cl := scenario.BuildCluster(spec, vantages)
	cl.Run()

	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	a := newTestAgg(t, Config{Journal: journal, JoinWindow: 10 * time.Second})

	// Run the single-vantage detector over each tap's capture and
	// feed every detected loop to the aggregator, exactly as a fleet
	// of loopscoped daemons would report it.
	reported := 0
	for _, v := range cl.Vantages {
		res := core.DetectRecords(v.Tap.Records(), core.DefaultConfig())
		if len(res.Loops) == 0 {
			t.Fatalf("vantage %s (%s): detector found no loops", v.Name, v.Link.Name)
		}
		for _, l := range res.Loops {
			ev := loopscope.Event{
				ID:         flight.LoopID(v.Name, l.Prefix.String(), int64(l.Start)),
				Source:     v.Link.Name,
				Vantage:    v.Name,
				Prefix:     l.Prefix.String(),
				StartNs:    int64(l.Start),
				EndNs:      int64(l.End),
				DurationNs: int64(l.End - l.Start),
				Streams:    len(l.Streams),
				Replicas:   l.Replicas(),
				TTLDelta:   l.Streams[0].TTLDelta(),
			}
			accepted, err := a.Ingest(Observation{Vantage: v.Name, Transport: TransportPull, Event: ev})
			if err != nil || !accepted {
				t.Fatalf("Ingest(%s %s) = %v, %v", v.Name, ev.Prefix, accepted, err)
			}
			reported++
		}
	}
	if reported < vantages {
		t.Fatalf("only %d observations across %d vantages", reported, vantages)
	}

	// Exactly one fleet loop, attributed to every vantage.
	loops := a.FleetLoops()
	if len(loops) != 1 {
		t.Fatalf("fleet loops = %d from %d observations, want 1 (dedup failed): %+v",
			len(loops), reported, loops)
	}
	fl := loops[0]
	if len(fl.Vantages) != vantages {
		t.Errorf("fleet loop vantages = %v, want all %d", fl.Vantages, vantages)
	}
	if len(fl.Evidence) != reported {
		t.Errorf("fleet loop evidence = %d entries, want every observation (%d)", len(fl.Evidence), reported)
	}

	// Precision and recall against the simulator's ground truth must
	// both be 1.0: every fleet loop matches a ground-truth window for
	// the same /24 and overlapping time, and every ground-truth
	// window is covered by a fleet loop.
	windows := cl.Net.GroundTruthWindows(time.Minute)
	if len(windows) == 0 {
		t.Fatal("simulation produced no ground-truth loops")
	}
	const slack = int64(time.Second)
	matchesWindow := func(fl FleetLoop, w netsim.LoopWindow) bool {
		return fl.Prefix == w.Prefix.String() &&
			fl.StartNs <= int64(w.End)+slack && int64(w.Start) <= fl.EndNs+slack
	}
	for _, fl := range loops {
		found := false
		for _, w := range windows {
			if matchesWindow(fl, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fleet loop %s %s [%d, %d] has no ground-truth counterpart (precision < 1)",
				fl.ID, fl.Prefix, fl.StartNs, fl.EndNs)
		}
	}
	for _, w := range windows {
		found := false
		for _, fl := range loops {
			if matchesWindow(fl, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ground-truth window %s [%v, %v] not covered by any fleet loop (recall < 1)",
				w.Prefix, w.Start, w.End)
		}
	}

	// kill -9: no Close, no final sync — a fresh aggregator replaying
	// the same journal must reproduce the identical fleet loop set.
	replay := newTestAgg(t, Config{Journal: journal, JoinWindow: 10 * time.Second})
	if !reflect.DeepEqual(replay.FleetLoops(), loops) {
		t.Errorf("journal replay diverged:\n got %+v\nwant %+v", replay.FleetLoops(), loops)
	}
}
