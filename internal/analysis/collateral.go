package analysis

import (
	"fmt"
	"strings"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/netsim"
	"loopscope/internal/stats"
)

// CollateralReport quantifies the paper's §I claim that loops impact
// traffic that is *not* caught in them: replicas inflate link
// utilization, and on a busy link the extra queueing delays everyone.
// It compares the delay of never-looped deliveries during ground-truth
// loop windows (padded, since queues take a moment to drain) against
// deliveries in quiet periods.
type CollateralReport struct {
	// InLoop / Quiet are the delay distributions (milliseconds) of
	// never-looped deliveries inside and outside padded loop windows.
	InLoop, Quiet *stats.CDF
	// Windows is the number of loop windows used.
	Windows int
}

// Inflation returns mean(InLoop) / mean(Quiet); 1 means loops had no
// collateral effect.
func (c *CollateralReport) Inflation() float64 {
	if c.Quiet.N() == 0 || c.InLoop.N() == 0 || c.Quiet.Mean() == 0 {
		return 0
	}
	return c.InLoop.Mean() / c.Quiet.Mean()
}

// AnalyzeCollateral computes the comparison from per-packet fates
// (run the simulation with RecordAllFates) and the detected loops'
// windows, padded by pad on each side. Detector loops are the right
// windows: they are exactly the loops whose replicas amplified the
// monitored link (ground-truth loops elsewhere in the network do not
// load it).
func AnalyzeCollateral(n *netsim.Network, loops []*core.Loop, pad time.Duration) *CollateralReport {
	rep := &CollateralReport{InLoop: &stats.CDF{}, Quiet: &stats.CDF{}}
	rep.Windows = len(loops)
	inWindow := func(t time.Duration) bool {
		for _, w := range loops {
			if t >= w.Start-pad && t <= w.End+pad {
				return true
			}
		}
		return false
	}
	for _, f := range n.Fates {
		if !f.Delivered || f.LoopCount > 0 {
			continue
		}
		ms := float64(f.Delay) / float64(time.Millisecond)
		if inWindow(f.At) {
			rep.InLoop.Add(ms)
		} else {
			rep.Quiet.Add(ms)
		}
	}
	return rep
}

// RenderCollateral prints the comparison.
func RenderCollateral(link string, c *CollateralReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Collateral delay (%s): %d loop windows\n", link, c.Windows)
	if c.InLoop.N() == 0 || c.Quiet.N() == 0 {
		b.WriteString("  not enough deliveries on one side to compare\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  never-looped traffic during loops: mean %.2fms  p50 %.2fms  p99 %.2fms  (%d pkts)\n",
		c.InLoop.Mean(), c.InLoop.Quantile(0.5), c.InLoop.Quantile(0.99), c.InLoop.N())
	fmt.Fprintf(&b, "  never-looped traffic in quiet air: mean %.2fms  p50 %.2fms  p99 %.2fms  (%d pkts)\n",
		c.Quiet.Mean(), c.Quiet.Quantile(0.5), c.Quiet.Quantile(0.99), c.Quiet.N())
	fmt.Fprintf(&b, "  inflation: x%.2f mean\n", c.Inflation())
	return b.String()
}
