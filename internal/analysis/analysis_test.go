package analysis_test

import (
	"io"
	"strings"
	"testing"
	"time"

	"loopscope/internal/analysis"
	"loopscope/internal/capture"
	"loopscope/internal/core"
	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
	"loopscope/internal/traffic"
)

// detected builds a small synthetic trace with one known loop and runs
// detection.
func detected(t *testing.T) (trace.Meta, []trace.Record, *core.Result) {
	t.Helper()
	dests := []routing.Prefix{
		routing.MustParsePrefix("198.51.100.0/24"),
		routing.MustParsePrefix("203.0.113.0/24"),
	}
	cfg := traffic.SynthConfig{
		Link:             "test-link",
		Duration:         30 * time.Second,
		PacketsPerSecond: 1000,
		Mix:              traffic.DefaultMix(),
		DestPrefixes:     dests,
		HopsMin:          3, HopsMax: 8,
		Loops: []traffic.LoopSpec{{
			Prefix: dests[1], Start: 10 * time.Second,
			Duration: 1500 * time.Millisecond, TTLDelta: 2,
			Revolution: 4 * time.Millisecond,
		}},
	}
	recs := traffic.Synthesize(cfg, stats.NewRNG(21))
	res := core.DetectRecords(recs, core.DefaultConfig())
	if len(res.Streams) == 0 {
		t.Fatal("setup produced no streams")
	}
	return trace.Meta{Link: "test-link", SnapLen: 40}, recs, res
}

func TestAnalyzeReport(t *testing.T) {
	meta, recs, res := detected(t)
	rep := analysis.Analyze(meta, recs, res)

	if rep.Link != "test-link" {
		t.Errorf("link = %q", rep.Link)
	}
	if rep.TotalPackets != len(recs) {
		t.Errorf("total = %d, want %d", rep.TotalPackets, len(recs))
	}
	if rep.LoopedPackets != res.LoopedPackets {
		t.Errorf("looped = %d, want %d", rep.LoopedPackets, res.LoopedPackets)
	}
	if rep.ReplicaStreams != len(res.Streams) || rep.RoutingLoops != len(res.Loops) {
		t.Error("stream/loop counts mismatch")
	}
	if rep.Duration <= 25*time.Second {
		t.Errorf("duration = %v", rep.Duration)
	}
	if rep.AvgBandwidthMbps <= 0 {
		t.Error("bandwidth not computed")
	}
	// Every stream in this trace has TTL delta 2.
	if rep.TTLDelta.Mode() != 2 {
		t.Errorf("TTL delta mode = %d", rep.TTLDelta.Mode())
	}
	if rep.TTLDelta.Fraction(2) != 1 {
		t.Errorf("delta-2 fraction = %v", rep.TTLDelta.Fraction(2))
	}
	// Spacing is exactly 4 ms by construction.
	if got := rep.SpacingMs.Quantile(0.5); got < 3.99 || got > 4.01 {
		t.Errorf("median spacing = %v ms", got)
	}
	// All-traffic mix: mostly TCP.
	if rep.AllClassFrac[packet.ClassIndex(packet.ClassTCP)] < 0.5 {
		t.Error("TCP fraction implausible")
	}
	// Dest series points at the looping /24.
	if len(rep.DestSeries) != rep.ReplicaStreams {
		t.Errorf("dest series = %d points", len(rep.DestSeries))
	}
	for _, p := range rep.DestSeries {
		if !routing.MustParsePrefix("203.0.113.0/24").Contains(p.Dst) {
			t.Errorf("dest %v outside loop prefix", p.Dst)
		}
	}
	if rep.ClassCFraction() != 1 {
		t.Errorf("class-C fraction = %v, want 1", rep.ClassCFraction())
	}
	if rep.LoopDurationSec.N() != len(res.Loops) {
		t.Error("loop duration CDF size mismatch")
	}
}

func TestRenderersContainSeries(t *testing.T) {
	meta, recs, res := detected(t)
	rep := analysis.Analyze(meta, recs, res)
	reps := []*analysis.Report{rep}

	cases := []struct {
		name, out string
		wants     []string
	}{
		{"table1", analysis.RenderTableI(reps), []string{"Table I", "test-link", "looped packets"}},
		{"table2", analysis.RenderTableII(reps), []string{"Table II", "replica streams", "routing loops"}},
		{"fig2", analysis.RenderFigure2(reps), []string{"Figure 2", "ttl delta"}},
		{"fig3", analysis.RenderFigure3(reps), []string{"Figure 3", "size [packets]"}},
		{"fig4", analysis.RenderFigure4(reps), []string{"Figure 4", "spacing [ms]"}},
		{"fig5", analysis.RenderFigure5(reps), []string{"Figure 5", "TCP", "MCAST"}},
		{"fig6", analysis.RenderFigure6(reps), []string{"Figure 6", "SYN"}},
		{"fig7", analysis.RenderFigure7(rep, 5), []string{"Figure 7", "destination"}},
		{"fig8", analysis.RenderFigure8(reps), []string{"Figure 8", "duration [ms]"}},
		{"fig9", analysis.RenderFigure9(reps), []string{"Figure 9", "duration [s]"}},
	}
	for _, c := range cases {
		for _, w := range c.wants {
			if !strings.Contains(c.out, w) {
				t.Errorf("%s output missing %q:\n%s", c.name, w, c.out)
			}
		}
	}

	// Figure 7 row limiting.
	full := analysis.RenderFigure7(rep, 0)
	limited := analysis.RenderFigure7(rep, 1)
	if len(limited) >= len(full) && rep.ReplicaStreams > 1 {
		t.Error("maxRows did not limit output")
	}
}

func TestLossReport(t *testing.T) {
	n := netsim.NewNetwork()
	// Hand-populate minute buckets.
	mins := []netsim.MinuteBucket{
		{Injected: 1000, Delivered: 990},
		{Injected: 1000, Delivered: 900},
	}
	mins[0].Drops[netsim.DropLineError] = 10
	mins[1].Drops[netsim.DropTTLExpired] = 80
	mins[1].Drops[netsim.DropLineError] = 20
	mins[1].LoopDrops = 80
	n.Minutes = mins
	n.Injected = 2000

	lr := analysis.AnalyzeLoss(n)
	if len(lr.PerMinuteLoopShare) != 2 {
		t.Fatalf("minutes = %d", len(lr.PerMinuteLoopShare))
	}
	if lr.PerMinuteLoopShare[0] != 0 {
		t.Errorf("minute 0 share = %v", lr.PerMinuteLoopShare[0])
	}
	if got := lr.PerMinuteLoopShare[1]; got != 0.8 {
		t.Errorf("minute 1 share = %v, want 0.8", got)
	}
	if lr.MaxLoopShare != 0.8 {
		t.Errorf("max share = %v", lr.MaxLoopShare)
	}
	if lr.OverallLossRate != 110.0/2000 {
		t.Errorf("overall loss = %v", lr.OverallLossRate)
	}
	if lr.OverallLoopLossRate != 80.0/2000 {
		t.Errorf("loop loss = %v", lr.OverallLoopLossRate)
	}
	out := analysis.RenderLoss("x", lr)
	if !strings.Contains(out, "worst minute loop share 80.0%") {
		t.Errorf("render: %s", out)
	}
}

func TestDelayReportFromLoopScenario(t *testing.T) {
	// Build a real loop with escapes: a <-> b loop on dst that heals
	// while packets are still in flight, so late arrivals escape to c.
	n := netsim.NewNetwork()
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	c := n.AddRouter("c", packet.AddrFrom(10, 0, 0, 3))
	lp := netsim.DefaultLinkParams()
	lp.PropDelay = 5 * time.Millisecond
	n.Connect(a, b, lp)
	n.Connect(b, c, lp)
	dst := routing.MustParsePrefix("203.0.113.0/24")
	c.AttachPrefix(dst)
	a.SetRoute(dst, b.ID)
	b.SetRoute(dst, a.ID) // loop: b points back at a

	inject := func(at time.Duration, id uint16) {
		n.Sim.At(at, func() {
			n.Inject(a, packet.Packet{
				IP: packet.IPv4Header{
					Version: 4, IHL: 5, TTL: 64, Protocol: packet.ProtoUDP,
					Src: packet.AddrFrom(192, 0, 2, 1), Dst: packet.AddrFrom(203, 0, 113, 5), ID: id,
				},
				Kind: packet.KindUDP, UDP: packet.UDPHeader{SrcPort: 1, DstPort: 2},
				HasTransport: true, PayloadLen: 64, PayloadSeed: uint64(id),
			})
		})
	}
	// The loop heals at 1.5 s. TTL 64 packets survive ~320 ms in the
	// loop, so packets entering early expire while those entering in
	// the final ~300 ms escape.
	for i := 0; i < 75; i++ {
		inject(time.Duration(i)*20*time.Millisecond, uint16(i+1))
	}
	n.Sim.At(1500*time.Millisecond, func() { b.SetRoute(dst, c.ID) })
	// Clean baseline traffic after the heal.
	for i := 0; i < 40; i++ {
		inject(2*time.Second+time.Duration(i)*10*time.Millisecond, uint16(100+i))
	}
	n.Sim.Run(5 * time.Second)

	dr := analysis.AnalyzeDelay(n)
	if dr.EscapedCount == 0 {
		t.Fatal("no packets escaped")
	}
	if dr.EscapeFraction <= 0 || dr.EscapeFraction >= 1 {
		t.Errorf("escape fraction = %v", dr.EscapeFraction)
	}
	if dr.CleanMeanDelay <= 0 {
		t.Error("no clean baseline delay")
	}
	if dr.ExtraDelayMs.N() != dr.EscapedCount {
		t.Error("extra-delay CDF size mismatch")
	}
	// Escapees looped for a while: extra delay must exceed one RTT.
	if dr.ExtraDelayMs.Min() < 10 {
		t.Errorf("min extra delay = %v ms, expected > 10", dr.ExtraDelayMs.Min())
	}
	out := analysis.RenderDelay("x", dr)
	if !strings.Contains(out, "extra delay of escapees") {
		t.Errorf("render: %s", out)
	}
}

func TestEscapeFractionBounds(t *testing.T) {
	meta, recs, res := detected(t)
	rep := analysis.Analyze(meta, recs, res)
	f := rep.EscapeFraction()
	if f < 0 || f > 1 {
		t.Errorf("escape fraction = %v", f)
	}
	var empty analysis.Report
	if empty.EscapeFraction() != 0 {
		t.Error("empty report escape fraction != 0")
	}
}

func TestReorderingFromLoopEscape(t *testing.T) {
	// a <-> b loop healed mid-stream: early packets circle and either
	// die or escape late; packets sent after the heal sail through
	// and overtake the escapees.
	n := netsim.NewNetwork()
	n.FateFilter = func(*netsim.Fate) bool { return true }
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	c := n.AddRouter("c", packet.AddrFrom(10, 0, 0, 3))
	lp := netsim.DefaultLinkParams()
	lp.PropDelay = 5 * time.Millisecond
	n.Connect(a, b, lp)
	n.Connect(b, c, lp)
	dst := routing.MustParsePrefix("203.0.113.0/24")
	c.AttachPrefix(dst)
	a.SetRoute(dst, b.ID)
	b.SetRoute(dst, a.ID) // loop

	send := func(at time.Duration, id uint16) {
		n.Sim.At(at, func() {
			n.Inject(a, packet.Packet{
				IP: packet.IPv4Header{
					Version: 4, IHL: 5, TTL: 64, Protocol: packet.ProtoUDP,
					Src: packet.AddrFrom(192, 0, 2, 1), Dst: packet.AddrFrom(203, 0, 113, 5), ID: id,
				},
				Kind: packet.KindUDP, UDP: packet.UDPHeader{SrcPort: 5, DstPort: 6},
				HasTransport: true, PayloadLen: 32, PayloadSeed: uint64(id),
			})
		})
	}
	// Packets 1..30 during the loop (some escape at the heal), then
	// 31..60 cleanly afterwards.
	for i := 0; i < 30; i++ {
		send(time.Duration(i)*10*time.Millisecond, uint16(i+1))
	}
	n.Sim.At(295*time.Millisecond, func() { b.SetRoute(dst, c.ID) })
	for i := 30; i < 60; i++ {
		send(400*time.Millisecond+time.Duration(i)*10*time.Millisecond, uint16(i+1))
	}
	n.Sim.Run(5 * time.Second)

	rep := analysis.AnalyzeReordering(n)
	if rep.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if rep.Reordered == 0 {
		t.Fatal("no reordering despite loop escapees")
	}
	if rep.LoopShareOfReordering() < 0.99 {
		t.Errorf("loop share of reordering = %.2f, want ~1 (only escapees are late)",
			rep.LoopShareOfReordering())
	}
	if rep.ReorderFraction() <= 0 || rep.ReorderFraction() > 0.5 {
		t.Errorf("reorder fraction = %.3f", rep.ReorderFraction())
	}
	if rep.Displacement.N() != rep.Reordered {
		t.Error("displacement CDF size mismatch")
	}
	t.Logf("delivered=%d reordered=%d (%.1f%%), loop share %.0f%%, max displacement %.0f packets",
		rep.Delivered, rep.Reordered, 100*rep.ReorderFraction(),
		100*rep.LoopShareOfReordering(), rep.Displacement.Max())
}

func TestReorderingCleanNetworkIsZero(t *testing.T) {
	n := netsim.NewNetwork()
	n.FateFilter = func(*netsim.Fate) bool { return true }
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	n.Connect(a, b, netsim.DefaultLinkParams())
	dst := routing.MustParsePrefix("203.0.113.0/24")
	b.AttachPrefix(dst)
	a.SetRoute(dst, b.ID)
	for i := 0; i < 100; i++ {
		i := i
		n.Sim.At(time.Duration(i)*time.Millisecond, func() {
			n.Inject(a, packet.Packet{
				IP: packet.IPv4Header{
					Version: 4, IHL: 5, TTL: 64, Protocol: packet.ProtoUDP,
					Src: packet.AddrFrom(192, 0, 2, 1), Dst: packet.AddrFrom(203, 0, 113, 5),
					ID: uint16(i + 1),
				},
				Kind: packet.KindUDP, UDP: packet.UDPHeader{SrcPort: 5, DstPort: 6},
				HasTransport: true, PayloadLen: 32, PayloadSeed: uint64(i),
			})
		})
	}
	n.Sim.Run(time.Second)
	rep := analysis.AnalyzeReordering(n)
	if rep.Reordered != 0 {
		t.Errorf("FIFO network reordered %d packets", rep.Reordered)
	}
}

func TestCollateralDelayOnBusyLink(t *testing.T) {
	// A 2 Mbps link at ~60% load; a 300 ms two-router loop multiplies
	// the looped packets' bytes ~30x, so clean traffic sharing the
	// link queues behind the replicas.
	n := netsim.NewNetwork()
	n.FateFilter = func(*netsim.Fate) bool { return true }
	a := n.AddRouter("a", packet.AddrFrom(10, 0, 0, 1))
	b := n.AddRouter("b", packet.AddrFrom(10, 0, 0, 2))
	c := n.AddRouter("c", packet.AddrFrom(10, 0, 0, 3))
	lp := netsim.LinkParams{Bandwidth: 2e6, PropDelay: time.Millisecond, QueueLimit: 512}
	mon := n.Connect(a, b, lp)
	n.Connect(b, c, lp)
	loopDst := routing.MustParsePrefix("203.0.113.0/24")
	cleanDst := routing.MustParsePrefix("198.51.100.0/24")
	c.AttachPrefix(loopDst)
	c.AttachPrefix(cleanDst)
	a.SetRoute(loopDst, b.ID)
	a.SetRoute(cleanDst, b.ID)
	b.SetRoute(loopDst, c.ID)
	b.SetRoute(cleanDst, c.ID)

	tap := capture.NewLinkTap(mon, 40, nil, true)

	inject := func(at time.Duration, dst packet.Addr, id uint16, ttl uint8) {
		n.Sim.At(at, func() {
			n.Inject(a, packet.Packet{
				IP: packet.IPv4Header{
					Version: 4, IHL: 5, TTL: ttl, Protocol: packet.ProtoUDP,
					Src: packet.AddrFrom(192, 0, 2, 1), Dst: dst, ID: id,
				},
				Kind: packet.KindUDP, UDP: packet.UDPHeader{SrcPort: 5, DstPort: 6},
				HasTransport: true, PayloadLen: 700, PayloadSeed: uint64(id),
			})
		})
	}
	// Clean background: ~200 pps of 728-byte packets = ~1.2 Mbps for
	// 20 s.
	id := uint16(1)
	for at := time.Duration(0); at < 20*time.Second; at += 5 * time.Millisecond {
		inject(at, packet.AddrFrom(198, 51, 100, 9), id, 64)
		id++
	}
	// Traffic towards the loop prefix: modest, but each packet loops
	// ~30 times between a and b during the loop window.
	for at := 9 * time.Second; at < 11*time.Second; at += 25 * time.Millisecond {
		inject(at, packet.AddrFrom(203, 0, 113, 9), id, 64)
		id++
	}
	// The loop: b points the loop prefix back at a from 9.5s to 10.5s.
	n.Sim.At(9500*time.Millisecond, func() { b.SetRoute(loopDst, a.ID) })
	n.Sim.At(10500*time.Millisecond, func() { b.SetRoute(loopDst, c.ID) })
	n.Sim.Run(30 * time.Second)

	res := core.DetectRecords(tap.Records(), core.DefaultConfig())
	if len(res.Loops) == 0 {
		t.Fatal("loop not detected on the monitored link")
	}
	rep := analysis.AnalyzeCollateral(n, res.Loops, 200*time.Millisecond)
	if rep.InLoop.N() == 0 || rep.Quiet.N() == 0 {
		t.Fatalf("one side empty: in=%d quiet=%d", rep.InLoop.N(), rep.Quiet.N())
	}
	if infl := rep.Inflation(); infl < 1.2 {
		t.Errorf("inflation = %.2f, want clean traffic visibly delayed during the loop", infl)
	}
	out := analysis.RenderCollateral("busy", rep)
	if !strings.Contains(out, "inflation") {
		t.Errorf("render: %s", out)
	}
}

func TestCSVExports(t *testing.T) {
	meta, recs, res := detected(t)
	rep := analysis.Analyze(meta, recs, res)
	reps := []*analysis.Report{rep, rep, rep, rep} // fig7 needs index 3

	files := map[string]*strings.Builder{}
	err := analysis.FigureCSVs(reps, func(name string) (io.WriteCloser, error) {
		b := &strings.Builder{}
		files[name] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig2_ttl_delta.csv", "fig3_replicas_cdf.csv", "fig4_spacing_cdf.csv",
		"fig5_all_classes.csv", "fig6_looped_classes.csv",
		"fig8_stream_duration_cdf.csv", "fig9_loop_duration_cdf.csv",
		"fig7_destinations.csv",
	}
	for _, name := range want {
		b, ok := files[name]
		if !ok {
			t.Errorf("%s not written", name)
			continue
		}
		out := b.String()
		if !strings.Contains(out, "test-link") && name != "fig7_destinations.csv" {
			t.Errorf("%s missing link column:\n%s", name, out)
		}
		if strings.Count(out, "\n") < 2 {
			t.Errorf("%s has no data rows", name)
		}
	}
	// Spot check figure 2 content: delta 2 row with fraction 1.
	if !strings.Contains(files["fig2_ttl_delta.csv"].String(), "2,1.0000") {
		t.Errorf("fig2 csv content:\n%s", files["fig2_ttl_delta.csv"].String())
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func TestICMPTypeHistogram(t *testing.T) {
	meta, recs, res := detected(t)
	rep := analysis.Analyze(meta, recs, res)
	if rep.ICMPTypes.Total() == 0 {
		t.Fatal("no ICMP types recorded")
	}
	if rep.ICMPTypes.Count(packet.ICMPEchoRequest) == 0 {
		t.Error("echo requests missing from type histogram")
	}
	if f := rep.ReservedICMPFraction(); f != 0 {
		t.Errorf("reserved fraction = %v on a clean trace", f)
	}
}
