package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"loopscope/internal/packet"
	"loopscope/internal/stats"
)

// CSV export: every figure's series as rows, for plotting with
// external tools. One file per figure; columns are x plus one column
// per trace.

// WriteCDFCSV writes a multi-trace CDF as CSV: header "x,<link>...",
// one row per x in xs.
func WriteCDFCSV(w io.Writer, axis string, xs []float64, pick func(*Report) *stats.CDF, reports []*Report) error {
	cw := csv.NewWriter(w)
	header := []string{axis}
	for _, r := range reports {
		header = append(header, r.Link)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, r := range reports {
			row = append(row, strconv.FormatFloat(pick(r).At(x), 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTTLDeltaCSV writes the Figure 2 distribution.
func WriteTTLDeltaCSV(w io.Writer, reports []*Report) error {
	cw := csv.NewWriter(w)
	header := []string{"ttl_delta"}
	maxDelta := 2
	for _, r := range reports {
		header = append(header, r.Link)
		for _, k := range r.TTLDelta.Keys() {
			if k > maxDelta {
				maxDelta = k
			}
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for d := 2; d <= maxDelta; d++ {
		row := []string{strconv.Itoa(d)}
		for _, r := range reports {
			row = append(row, strconv.FormatFloat(r.TTLDelta.Fraction(d), 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteClassCSV writes a Figure 5/6 style per-class fraction table.
func WriteClassCSV(w io.Writer, pick func(*Report) [NumClasses]float64, reports []*Report) error {
	cw := csv.NewWriter(w)
	header := []string{"class"}
	for _, r := range reports {
		header = append(header, r.Link)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for c := 0; c < NumClasses; c++ {
		row := []string{packet.ClassNames[c]}
		for _, r := range reports {
			row = append(row, strconv.FormatFloat(pick(r)[c], 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDestSeriesCSV writes the Figure 7 scatter for one trace:
// time_ns, destination.
func WriteDestSeriesCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ns", "destination"}); err != nil {
		return err
	}
	for _, p := range r.DestSeries {
		if err := cw.Write([]string{
			strconv.FormatInt(int64(p.Time), 10), p.Dst.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FigureCSVs writes every figure's CSV through the open function,
// which receives a file name ("fig2.csv", ...) and must return a
// writer (closed by the caller of FigureCSVs via the returned closers
// pattern, or an in-place writer for tests).
func FigureCSVs(reports []*Report, open func(name string) (io.WriteCloser, error)) error {
	type job struct {
		name  string
		write func(io.Writer) error
	}
	jobs := []job{
		{"fig2_ttl_delta.csv", func(w io.Writer) error { return WriteTTLDeltaCSV(w, reports) }},
		{"fig3_replicas_cdf.csv", func(w io.Writer) error {
			return WriteCDFCSV(w, "replicas", []float64{2, 4, 8, 16, 31, 40, 63, 100, 127, 200},
				func(r *Report) *stats.CDF { return r.ReplicasPerStream }, reports)
		}},
		{"fig4_spacing_cdf.csv", func(w io.Writer) error {
			return WriteCDFCSV(w, "spacing_ms", []float64{0.5, 1, 2, 5, 8, 10, 22, 50, 100, 500},
				func(r *Report) *stats.CDF { return r.SpacingMs }, reports)
		}},
		{"fig5_all_classes.csv", func(w io.Writer) error {
			return WriteClassCSV(w, func(r *Report) [NumClasses]float64 { return r.AllClassFrac }, reports)
		}},
		{"fig6_looped_classes.csv", func(w io.Writer) error {
			return WriteClassCSV(w, func(r *Report) [NumClasses]float64 { return r.LoopedClassFrac }, reports)
		}},
		{"fig8_stream_duration_cdf.csv", func(w io.Writer) error {
			return WriteCDFCSV(w, "duration_ms", []float64{1, 10, 50, 100, 150, 200, 300, 400, 500, 700, 800, 1000, 5000},
				func(r *Report) *stats.CDF { return r.StreamDurationMs }, reports)
		}},
		{"fig9_loop_duration_cdf.csv", func(w io.Writer) error {
			return WriteCDFCSV(w, "duration_s", []float64{0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300},
				func(r *Report) *stats.CDF { return r.LoopDurationSec }, reports)
		}},
	}
	if len(reports) > 3 {
		jobs = append(jobs, job{"fig7_destinations.csv", func(w io.Writer) error {
			return WriteDestSeriesCSV(w, reports[3])
		}})
	}
	for _, j := range jobs {
		wc, err := open(j.name)
		if err != nil {
			return fmt.Errorf("opening %s: %w", j.name, err)
		}
		if err := j.write(wc); err != nil {
			wc.Close()
			return fmt.Errorf("writing %s: %w", j.name, err)
		}
		if err := wc.Close(); err != nil {
			return err
		}
	}
	return nil
}
