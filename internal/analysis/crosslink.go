package analysis

import (
	"fmt"
	"strings"
	"time"

	"loopscope/internal/core"
	"loopscope/internal/packet"
	"loopscope/internal/stats"
)

// Cross-link correlation: the paper's traces were collected on several
// links of the same backbone in parallel. When two monitored links sit
// on one forwarding path, a loop whose cycle spans both produces
// replica streams in both traces for the same original packets; the
// TTL offset between the paired observations is the hop distance
// between the vantage points. Matching the two traces therefore both
// corroborates each detection and localises the loop relative to the
// taps — for free, from data the operator already has.

// StreamPair is one packet's replica streams seen from two links.
type StreamPair struct {
	A, B *core.ReplicaStream
	// TTLOffset is A's first-replica TTL minus B's at the matching
	// revolution: the router hops from tap A to tap B.
	TTLOffset int
}

// CrossLinkReport summarises the correlation of two traces.
type CrossLinkReport struct {
	// Pairs are the matched streams.
	Pairs []StreamPair
	// OnlyA / OnlyB count streams seen at one link only.
	OnlyA, OnlyB int
	// LoopsBoth counts loops (prefix + overlapping window) present in
	// both traces.
	LoopsBoth, LoopsOnlyA, LoopsOnlyB int
	// HopDistance is the modal TTL offset across pairs — the inferred
	// distance between the taps.
	HopDistance int
}

// streamKey identifies the original packet behind a replica stream.
type streamKey struct {
	src, dst packet.Addr
	id       uint16
	proto    uint8
}

func keyOf(s *core.ReplicaStream) streamKey {
	return streamKey{
		src:   s.Summary.Src,
		dst:   s.Summary.Dst,
		id:    s.Summary.ID,
		proto: s.Summary.Protocol,
	}
}

// MatchCrossLink pairs the replica streams and loops of two traces
// captured on links A (upstream) and B (downstream).
func MatchCrossLink(a, b *core.Result) *CrossLinkReport {
	rep := &CrossLinkReport{}
	byKey := make(map[streamKey]*core.ReplicaStream, len(b.Streams))
	for _, s := range b.Streams {
		byKey[keyOf(s)] = s
	}
	matchedB := make(map[*core.ReplicaStream]bool)
	offsets := stats.NewHistogram()
	for _, sa := range a.Streams {
		sb, ok := byKey[keyOf(sa)]
		if !ok {
			rep.OnlyA++
			continue
		}
		matchedB[sb] = true
		off := int(sa.Replicas[0].TTL) - int(sb.Replicas[0].TTL)
		// The downstream tap may have missed the first revolution;
		// normalise into [0, delta).
		if d := sa.TTLDelta(); d > 0 {
			for off < 0 {
				off += d
			}
			off %= d
		}
		offsets.Add(off)
		rep.Pairs = append(rep.Pairs, StreamPair{A: sa, B: sb, TTLOffset: off})
	}
	for _, sb := range b.Streams {
		if !matchedB[sb] {
			rep.OnlyB++
		}
	}
	if offsets.Total() > 0 {
		rep.HopDistance = offsets.Mode()
	}

	// Loop-level matching: same prefix, overlapping (slightly padded)
	// windows.
	matchedLoopB := make(map[*core.Loop]bool)
	const pad = time.Second
	for _, la := range a.Loops {
		found := false
		for _, lb := range b.Loops {
			if la.Prefix == lb.Prefix && la.Start <= lb.End+pad && lb.Start <= la.End+pad {
				found = true
				matchedLoopB[lb] = true
			}
		}
		if found {
			rep.LoopsBoth++
		} else {
			rep.LoopsOnlyA++
		}
	}
	for _, lb := range b.Loops {
		if !matchedLoopB[lb] {
			rep.LoopsOnlyB++
		}
	}
	return rep
}

// RenderCrossLink prints the correlation summary.
func RenderCrossLink(rep *CrossLinkReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-link correlation:\n")
	fmt.Fprintf(&b, "  streams seen at both taps: %d (only upstream %d, only downstream %d)\n",
		len(rep.Pairs), rep.OnlyA, rep.OnlyB)
	fmt.Fprintf(&b, "  loops seen at both taps:   %d (only upstream %d, only downstream %d)\n",
		rep.LoopsBoth, rep.LoopsOnlyA, rep.LoopsOnlyB)
	if len(rep.Pairs) > 0 {
		fmt.Fprintf(&b, "  inferred tap separation:   %d router hop(s) (modal TTL offset)\n", rep.HopDistance)
	}
	return b.String()
}
