package analysis

import (
	"fmt"
	"strings"
	"time"

	"loopscope/internal/packet"
	"loopscope/internal/stats"
)

// header prints a title row with one column per report.
func header(b *strings.Builder, firstCol string, reports []*Report) {
	fmt.Fprintf(b, "%-16s", firstCol)
	for _, r := range reports {
		fmt.Fprintf(b, "  %12s", r.Link)
	}
	b.WriteByte('\n')
}

// RenderTableI prints trace length, average bandwidth, total and
// looped packet counts per trace (the paper's Table I).
func RenderTableI(reports []*Report) string {
	var b strings.Builder
	b.WriteString("Table I: details of traces\n")
	header(&b, "", reports)
	fmt.Fprintf(&b, "%-16s", "length")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %12s", r.Duration.Round(time.Second))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "avg bw (Mbps)")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %12.1f", r.AvgBandwidthMbps)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "packets")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %12d", r.TotalPackets)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "looped packets")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %12d", r.LoopedPackets)
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderTableII prints replica-stream and merged-loop counts per trace
// (the paper's Table II).
func RenderTableII(reports []*Report) string {
	var b strings.Builder
	b.WriteString("Table II: number of routing loops\n")
	header(&b, "", reports)
	fmt.Fprintf(&b, "%-16s", "replica streams")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %12d", r.ReplicaStreams)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "routing loops")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %12d", r.RoutingLoops)
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderFigure2 prints the TTL-delta distribution of replica streams.
func RenderFigure2(reports []*Report) string {
	var b strings.Builder
	b.WriteString("Figure 2: TTL delta distribution (fraction of replica streams)\n")
	header(&b, "ttl delta", reports)
	maxDelta := 2
	for _, r := range reports {
		for _, k := range r.TTLDelta.Keys() {
			if k > maxDelta {
				maxDelta = k
			}
		}
	}
	if maxDelta > 16 {
		maxDelta = 16
	}
	for d := 2; d <= maxDelta; d++ {
		fmt.Fprintf(&b, "%-16d", d)
		for _, r := range reports {
			fmt.Fprintf(&b, "  %12.3f", r.TTLDelta.Fraction(d))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderCDF prints a multi-trace CDF table evaluated at xs.
func renderCDF(title, axis string, xs []float64, pick func(*Report) *stats.CDF, reports []*Report) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	header(&b, axis, reports)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-16.6g", x)
		for _, r := range reports {
			fmt.Fprintf(&b, "  %12.3f", pick(r).At(x))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure3 prints the CDF of replicas per stream.
func RenderFigure3(reports []*Report) string {
	return renderCDF(
		"Figure 3: CDF of the number of replicas in a replica stream",
		"size [packets]",
		[]float64{2, 4, 8, 16, 31, 40, 63, 100, 127, 200},
		func(r *Report) *stats.CDF { return r.ReplicasPerStream },
		reports)
}

// RenderFigure4 prints the CDF of mean inter-replica spacing.
func RenderFigure4(reports []*Report) string {
	return renderCDF(
		"Figure 4: CDF of inter-replica spacing time",
		"spacing [ms]",
		[]float64{0.5, 1, 2, 5, 8, 10, 22, 50, 100, 500},
		func(r *Report) *stats.CDF { return r.SpacingMs },
		reports)
}

// classRows prints one row per traffic class from a per-report
// fraction array.
func classRows(title string, pick func(*Report) [NumClasses]float64, reports []*Report) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	header(&b, "class", reports)
	for c := 0; c < NumClasses; c++ {
		fmt.Fprintf(&b, "%-16s", packet.ClassNames[c])
		for _, r := range reports {
			fmt.Fprintf(&b, "  %12.4f", pick(r)[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure5 prints the traffic-type distribution of all traffic.
func RenderFigure5(reports []*Report) string {
	return classRows("Figure 5: traffic type distribution of all traffic (fraction of packets)",
		func(r *Report) [NumClasses]float64 { return r.AllClassFrac }, reports)
}

// RenderFigure6 prints the traffic-type distribution of looped
// traffic.
func RenderFigure6(reports []*Report) string {
	return classRows("Figure 6: traffic type distribution of looped traffic (fraction of looped packets)",
		func(r *Report) [NumClasses]float64 { return r.LoopedClassFrac }, reports)
}

// RenderFigure7 prints the destination-address time series of replica
// streams for one trace (the paper plots Backbone 4). maxRows bounds
// the output; 0 means all.
func RenderFigure7(r *Report, maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: destination addresses of replica streams in %s\n", r.Link)
	fmt.Fprintf(&b, "%-14s  %-16s  %s\n", "time", "destination", "class-C?")
	rows := r.DestSeries
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	for _, p := range rows {
		classC := ""
		if p.Dst[0] >= 192 && p.Dst[0] < 224 {
			classC = "C"
		}
		fmt.Fprintf(&b, "%-14s  %-16s  %s\n", p.Time.Round(time.Millisecond), p.Dst, classC)
	}
	if len(r.DestSeries) > len(rows) {
		fmt.Fprintf(&b, "... (%d more)\n", len(r.DestSeries)-len(rows))
	}
	return b.String()
}

// ClassCFraction returns the fraction of a report's replica streams
// whose destination lies in the historical class-C space
// (192.0.0.0/3), the concentration the paper points out in Figure 7.
func (r *Report) ClassCFraction() float64 {
	if len(r.DestSeries) == 0 {
		return 0
	}
	n := 0
	for _, p := range r.DestSeries {
		if p.Dst[0] >= 192 && p.Dst[0] < 224 {
			n++
		}
	}
	return float64(n) / float64(len(r.DestSeries))
}

// RenderFigure8 prints the CDF of replica-stream duration.
func RenderFigure8(reports []*Report) string {
	return renderCDF(
		"Figure 8: CDF of replica stream duration",
		"duration [ms]",
		[]float64{1, 10, 50, 100, 150, 200, 300, 400, 500, 700, 800, 1000, 5000},
		func(r *Report) *stats.CDF { return r.StreamDurationMs },
		reports)
}

// RenderFigure9 prints the CDF of merged routing-loop duration.
func RenderFigure9(reports []*Report) string {
	return renderCDF(
		"Figure 9: CDF of routing loop duration",
		"duration [s]",
		[]float64{0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300},
		func(r *Report) *stats.CDF { return r.LoopDurationSec },
		reports)
}

// RenderLoss prints the §VI loss-impact summary.
func RenderLoss(link string, lr *LossReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Loss impact (%s): overall loss %.4f%%, loop-attributable %.4f%%, worst minute loop share %.1f%%\n",
		link, lr.OverallLossRate*100, lr.OverallLoopLossRate*100, lr.MaxLoopShare*100)
	for i, s := range lr.PerMinuteLoopShare {
		bar := strings.Repeat("#", int(s*40+0.5))
		fmt.Fprintf(&b, "  minute %3d: %5.1f%% %s\n", i, s*100, bar)
	}
	return b.String()
}

// RenderDelay prints the §VI delay-impact summary.
func RenderDelay(link string, dr *DelayReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Delay impact (%s): escaped %d looped packets (%.1f%%), clean mean delay %s\n",
		link, dr.EscapedCount, dr.EscapeFraction*100, dr.CleanMeanDelay.Round(time.Microsecond))
	if dr.ExtraDelayMs.N() > 0 {
		fmt.Fprintf(&b, "  extra delay of escapees: p10=%.1fms p50=%.1fms p90=%.1fms max=%.1fms\n",
			dr.ExtraDelayMs.Quantile(0.10), dr.ExtraDelayMs.Quantile(0.50),
			dr.ExtraDelayMs.Quantile(0.90), dr.ExtraDelayMs.Max())
	}
	return b.String()
}
