// Package analysis turns detector output into the paper's tables and
// figures: Table I/II summaries, the TTL-delta distribution (Fig. 2),
// the CDFs of replica count, inter-replica spacing, stream duration
// and loop duration (Figs. 3, 4, 8, 9), the traffic-type mixes for all
// and for looped traffic (Figs. 5, 6), the destination time series
// (Fig. 7), and the §VI loss/delay impact estimates.
package analysis

import (
	"time"

	"loopscope/internal/core"
	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
)

// NumClasses is the number of traffic-type categories (Figure 5's
// x-axis).
const NumClasses = 11

// DestPoint is one Figure-7 sample: a replica stream's start time and
// destination address.
type DestPoint struct {
	Time time.Duration
	Dst  packet.Addr
}

// Report holds every per-trace statistic the paper plots.
type Report struct {
	// Identification (Table I).
	Link         string
	Duration     time.Duration
	TotalPackets int
	// AvgBandwidthMbps is the mean offered load over the trace in
	// megabits per second.
	AvgBandwidthMbps float64
	LoopedPackets    int

	// Step outputs (Table II).
	ReplicaStreams int
	RoutingLoops   int

	// Figure 2: fraction of replica streams per TTL delta.
	TTLDelta *stats.Histogram
	// Figure 3: CDF of replicas per stream.
	ReplicasPerStream *stats.CDF
	// Figure 4: CDF of mean inter-replica spacing (milliseconds).
	SpacingMs *stats.CDF
	// Figure 5: per-class fraction of all packets. A packet can be in
	// several classes, so fractions do not sum to 1.
	AllClassFrac [NumClasses]float64
	// Figure 6: per-class fraction of looped packets.
	LoopedClassFrac [NumClasses]float64
	// Figure 7: destination addresses of replica streams over time.
	DestSeries []DestPoint
	// Figure 8: CDF of replica-stream duration (milliseconds).
	StreamDurationMs *stats.CDF
	// Figure 9: CDF of merged routing-loop duration (seconds).
	LoopDurationSec *stats.CDF

	// ICMPTypes tallies ICMP message types over all traffic — the
	// lens through which the paper spotted the host emitting messages
	// with reserved type fields on Backbones 1 and 2 (§V-B).
	ICMPTypes *stats.Histogram

	// §VI delay impact, estimated from the trace alone.
	EscapedStreams int
	// EscapeDelayMs is the CDF of observable extra delay (stream
	// span) of escaped streams, in milliseconds.
	EscapeDelayMs *stats.CDF
}

// Analyze computes a Report from a trace and its detection result.
// recs must be the same records the detector consumed.
func Analyze(meta trace.Meta, recs []trace.Record, res *core.Result) *Report {
	r := &Report{
		Link:              meta.Link,
		TotalPackets:      res.TotalPackets,
		LoopedPackets:     res.LoopedPackets,
		ReplicaStreams:    len(res.Streams),
		RoutingLoops:      len(res.Loops),
		TTLDelta:          stats.NewHistogram(),
		ICMPTypes:         stats.NewHistogram(),
		ReplicasPerStream: &stats.CDF{},
		SpacingMs:         &stats.CDF{},
		StreamDurationMs:  &stats.CDF{},
		LoopDurationSec:   &stats.CDF{},
		EscapeDelayMs:     &stats.CDF{},
	}
	if n := len(recs); n > 0 {
		r.Duration = recs[n-1].Time - recs[0].Time
	}

	// Wire volume for average bandwidth.
	var wireBytes uint64
	var allCounts, loopCounts [NumClasses]int
	for i, rec := range recs {
		wireBytes += uint64(rec.WireLen)
		pkt, err := packet.Decode(rec.Data)
		if err != nil {
			continue
		}
		if pkt.Kind == packet.KindICMP && pkt.HasTransport {
			r.ICMPTypes.Add(int(pkt.ICMP.Type))
		}
		mask := packet.Classify(&pkt)
		looped := i < len(res.Membership) && res.Membership[i] >= 0
		for c := 0; c < NumClasses; c++ {
			if mask&(1<<c) != 0 {
				allCounts[c]++
				if looped {
					loopCounts[c]++
				}
			}
		}
	}
	if r.Duration > 0 {
		r.AvgBandwidthMbps = float64(wireBytes) * 8 / r.Duration.Seconds() / 1e6
	}
	for c := 0; c < NumClasses; c++ {
		if r.TotalPackets > 0 {
			r.AllClassFrac[c] = float64(allCounts[c]) / float64(r.TotalPackets)
		}
		if r.LoopedPackets > 0 {
			r.LoopedClassFrac[c] = float64(loopCounts[c]) / float64(r.LoopedPackets)
		}
	}

	for _, s := range res.Streams {
		r.TTLDelta.Add(s.TTLDelta())
		r.ReplicasPerStream.Add(float64(s.Count()))
		r.SpacingMs.Add(float64(s.MeanSpacing()) / float64(time.Millisecond))
		r.StreamDurationMs.Add(float64(s.Duration()) / float64(time.Millisecond))
		r.DestSeries = append(r.DestSeries, DestPoint{Time: s.Start(), Dst: s.Summary.Dst})
		if s.Escaped() {
			r.EscapedStreams++
			r.EscapeDelayMs.Add(float64(s.LoopDelay()) / float64(time.Millisecond))
		}
	}
	for _, l := range res.Loops {
		r.LoopDurationSec.Add(l.Duration().Seconds())
	}
	return r
}

// ReservedICMPFraction returns the fraction of ICMP packets whose
// type field is outside the assigned range (the anomalous-host
// signature).
func (r *Report) ReservedICMPFraction() float64 {
	if r.ICMPTypes.Total() == 0 {
		return 0
	}
	n := 0
	for _, k := range r.ICMPTypes.Keys() {
		if k >= 44 { // types 44-252 were reserved at the time
			n += r.ICMPTypes.Count(k)
		}
	}
	return float64(n) / float64(r.ICMPTypes.Total())
}

// EscapeFraction returns the fraction of validated streams whose
// packet escaped the loop (paper §VI: between 1% and 10%).
func (r *Report) EscapeFraction() float64 {
	if r.ReplicaStreams == 0 {
		return 0
	}
	return float64(r.EscapedStreams) / float64(r.ReplicaStreams)
}

// LossReport summarises the §VI loss analysis from simulator
// accounting.
type LossReport struct {
	// PerMinuteLoopShare is, for each trace minute, the share of that
	// minute's drops attributable to loops (TTL expiry of looped
	// packets).
	PerMinuteLoopShare []float64
	// MaxLoopShare is the worst minute's share — the paper reports up
	// to 0.09 (9%) depending on the trace.
	MaxLoopShare float64
	// OverallLossRate is total drops / total injected.
	OverallLossRate float64
	// OverallLoopLossRate is loop-attributable drops / total injected.
	OverallLoopLossRate float64
}

// AnalyzeLoss extracts a LossReport from a simulated network.
func AnalyzeLoss(n *netsim.Network) *LossReport {
	lr := &LossReport{}
	var drops, loopDrops uint64
	for _, m := range n.Minutes {
		d := m.TotalDrops()
		drops += d
		loopDrops += m.LoopDrops
		share := 0.0
		if d > 0 {
			share = float64(m.LoopDrops) / float64(d)
		}
		lr.PerMinuteLoopShare = append(lr.PerMinuteLoopShare, share)
		if share > lr.MaxLoopShare {
			lr.MaxLoopShare = share
		}
	}
	if n.Injected > 0 {
		lr.OverallLossRate = float64(drops) / float64(n.Injected)
		lr.OverallLoopLossRate = float64(loopDrops) / float64(n.Injected)
	}
	return lr
}

// DelayReport summarises the §VI extra-delay analysis from simulator
// ground truth: packets that escaped a loop versus packets that never
// looped.
type DelayReport struct {
	// EscapedCount is the number of delivered packets that had
	// looped.
	EscapedCount int
	// EscapeFraction is escaped / all looped packets.
	EscapeFraction float64
	// CleanMeanDelay is the mean delay of never-looped deliveries.
	CleanMeanDelay time.Duration
	// ExtraDelayMs is the CDF of (escaped delay - clean mean) in
	// milliseconds.
	ExtraDelayMs *stats.CDF
}

// AnalyzeDelay extracts a DelayReport from a simulated network. The
// network must retain looped fates (the default FateFilter does).
func AnalyzeDelay(n *netsim.Network) *DelayReport {
	dr := &DelayReport{
		CleanMeanDelay: n.CleanMeanDelay(),
		ExtraDelayMs:   &stats.CDF{},
	}
	looped := 0
	for _, f := range n.Fates {
		if f.LoopCount == 0 {
			continue
		}
		looped++
		if f.Delivered {
			dr.EscapedCount++
			extra := f.Delay - dr.CleanMeanDelay
			if extra < 0 {
				extra = 0
			}
			dr.ExtraDelayMs.Add(float64(extra) / float64(time.Millisecond))
		}
	}
	if looped > 0 {
		dr.EscapeFraction = float64(dr.EscapedCount) / float64(looped)
	}
	return dr
}
