package analysis

import (
	"sort"
	"time"

	"loopscope/internal/netsim"
	"loopscope/internal/packet"
	"loopscope/internal/stats"
)

// ReorderReport quantifies the paper's closing §VI remark: "those
// packets that escape a loop can be delivered out-of-order". A
// delivered packet is reordered when some packet from the same
// (source, destination) pair that was sent later arrived earlier.
type ReorderReport struct {
	// Delivered is the number of delivered packets inspected.
	Delivered int
	// Reordered counts delivered packets that arrived after a
	// later-sent packet of their pair.
	Reordered int
	// ReorderedByLoop counts reordered packets that had looped — the
	// out-of-order deliveries the paper attributes to loop escape.
	ReorderedByLoop int
	// Displacement is the CDF of how late a reordered packet arrived,
	// in packets (how many later-sent pair packets overtook it).
	Displacement *stats.CDF
	// MaxLatenessMs is the CDF of time between a reordered packet's
	// delivery and the delivery of the first packet that overtook it.
	MaxLatenessMs *stats.CDF
}

// AnalyzeReordering computes reordering over the network's retained
// fates. It needs every delivered fate, so run the simulation with a
// FateFilter that keeps everything (scenario.Spec.RecordAllFates).
func AnalyzeReordering(n *netsim.Network) *ReorderReport {
	rep := &ReorderReport{
		Displacement:  &stats.CDF{},
		MaxLatenessMs: &stats.CDF{},
	}
	type pair struct{ src, dst packet.Addr }
	byPair := make(map[pair][]netsim.Fate)
	for _, f := range n.Fates {
		if !f.Delivered {
			continue
		}
		rep.Delivered++
		byPair[pair{f.Src, f.Dst}] = append(byPair[pair{f.Src, f.Dst}], f)
	}
	for _, fates := range byPair {
		if len(fates) < 2 {
			continue
		}
		// Delivery order.
		sort.Slice(fates, func(i, j int) bool {
			if fates[i].At != fates[j].At {
				return fates[i].At < fates[j].At
			}
			return fates[i].UID < fates[j].UID
		})
		// A packet is reordered iff a packet with a larger UID (sent
		// later; UIDs are injection-ordered) was delivered earlier.
		// Scan delivery order tracking the max UID seen so far.
		var maxUID uint64
		for _, f := range fates {
			if f.UID < maxUID {
				rep.Reordered++
				if f.LoopCount > 0 {
					rep.ReorderedByLoop++
				}
				// Displacement: count of earlier-delivered,
				// later-sent packets.
				overtakers := 0
				var firstOvertakeAt time.Duration = -1
				for _, g := range fates {
					if g.At >= f.At {
						break
					}
					if g.UID > f.UID {
						overtakers++
						if firstOvertakeAt < 0 {
							firstOvertakeAt = g.At
						}
					}
				}
				rep.Displacement.Add(float64(overtakers))
				if firstOvertakeAt >= 0 {
					rep.MaxLatenessMs.Add(float64(f.At-firstOvertakeAt) / float64(time.Millisecond))
				}
			} else {
				maxUID = f.UID
			}
		}
	}
	return rep
}

// ReorderFraction returns reordered / delivered.
func (r *ReorderReport) ReorderFraction() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.Reordered) / float64(r.Delivered)
}

// LoopShareOfReordering returns the share of reordered deliveries that
// had looped.
func (r *ReorderReport) LoopShareOfReordering() float64 {
	if r.Reordered == 0 {
		return 0
	}
	return float64(r.ReorderedByLoop) / float64(r.Reordered)
}
