// Benchmarks that regenerate every table and figure of the paper from
// the simulated backbones, plus the ablations DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The four backbone simulations run once and are shared by all
// benchmarks; each benchmark then measures the detection/analysis work
// for its experiment and prints the regenerated table or figure
// (stdout, first iteration only).
package loopscope_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"loopscope/internal/agg"
	"loopscope/internal/analysis"
	"loopscope/internal/analytics"
	"loopscope/internal/baseline"
	"loopscope/internal/core"
	"loopscope/internal/fibscan"
	"loopscope/internal/netsim"
	"loopscope/internal/obs"
	"loopscope/internal/obs/flight"
	"loopscope/internal/obs/provenance"
	"loopscope/internal/packet"
	"loopscope/internal/routing"
	"loopscope/internal/scenario"
	"loopscope/internal/stats"
	"loopscope/internal/trace"
	"loopscope/internal/traffic"
	"loopscope/pkg/loopscope"
)

type bbRun struct {
	spec scenario.Spec
	net  *netsim.Network
	meta trace.Meta
	recs []trace.Record
	res  *core.Result
	rep  *analysis.Report
}

var (
	bbOnce sync.Once
	bbRuns []*bbRun
)

// backbones simulates the paper's four traces once per test binary.
func backbones(b *testing.B) []*bbRun {
	b.Helper()
	bbOnce.Do(func() {
		for _, spec := range scenario.PaperBackbones() {
			bb := scenario.Build(spec)
			bb.Run()
			recs := bb.Records()
			res := core.DetectRecords(recs, core.DefaultConfig())
			rep := analysis.Analyze(bb.Meta(), recs, res)
			bbRuns = append(bbRuns, &bbRun{
				spec: spec, net: bb.Net, meta: bb.Meta(),
				recs: recs, res: res, rep: rep,
			})
		}
	})
	return bbRuns
}

func reports(runs []*bbRun) []*analysis.Report {
	out := make([]*analysis.Report, len(runs))
	for i, r := range runs {
		out[i] = r.rep
	}
	return out
}

var printOnce sync.Map

// printFirst prints s once per benchmark name across all iterations.
func printFirst(name, s string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", s)
	}
}

// detectAll re-runs detection over every trace (the measured unit of
// the table benchmarks).
func detectAll(runs []*bbRun, cfg core.Config) []*core.Result {
	out := make([]*core.Result, len(runs))
	for i, r := range runs {
		out[i] = core.DetectRecords(r.recs, cfg)
	}
	return out
}

// BenchmarkTableI regenerates Table I: per-trace length, bandwidth,
// packet and looped-packet counts. The measured work is full detection
// over all four traces.
func BenchmarkTableI(b *testing.B) {
	runs := backbones(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detectAll(runs, core.DefaultConfig())
	}
	b.StopTimer()
	printFirst("table1", analysis.RenderTableI(reports(runs)))
	var looped int
	for _, r := range runs {
		looped += r.rep.LoopedPackets
	}
	b.ReportMetric(float64(looped), "looped-pkts")
}

// BenchmarkTableII regenerates Table II: replica streams vs merged
// routing loops per trace. The measured work is the merge step
// (detection re-run with merging).
func BenchmarkTableII(b *testing.B) {
	runs := backbones(b)
	b.ResetTimer()
	var loops int
	for i := 0; i < b.N; i++ {
		loops = 0
		for _, res := range detectAll(runs, core.DefaultConfig()) {
			loops += len(res.Loops)
		}
	}
	b.StopTimer()
	printFirst("table2", analysis.RenderTableII(reports(runs)))
	b.ReportMetric(float64(loops), "loops")
}

// benchFigure is the shared harness for figure benchmarks: measures
// the analysis extraction and prints the regenerated figure.
func benchFigure(b *testing.B, name string, render func([]*analysis.Report) string) {
	runs := backbones(b)
	b.ResetTimer()
	var reps []*analysis.Report
	for i := 0; i < b.N; i++ {
		reps = reps[:0]
		for _, r := range runs {
			reps = append(reps, analysis.Analyze(r.meta, r.recs, r.res))
		}
	}
	b.StopTimer()
	printFirst(name, render(reps))
}

// BenchmarkFigure2 regenerates the TTL-delta distribution.
func BenchmarkFigure2(b *testing.B) { benchFigure(b, "fig2", analysis.RenderFigure2) }

// BenchmarkFigure3 regenerates the CDF of replicas per stream.
func BenchmarkFigure3(b *testing.B) { benchFigure(b, "fig3", analysis.RenderFigure3) }

// BenchmarkFigure4 regenerates the CDF of inter-replica spacing.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, "fig4", analysis.RenderFigure4) }

// BenchmarkFigure5 regenerates the traffic-type mix of all traffic.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, "fig5", analysis.RenderFigure5) }

// BenchmarkFigure6 regenerates the traffic-type mix of looped traffic.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "fig6", analysis.RenderFigure6) }

// BenchmarkFigure7 regenerates the destination time series (plotted
// for one trace, as in the paper).
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, "fig7", func(reps []*analysis.Report) string {
		s := analysis.RenderFigure7(reps[3], 25)
		for _, r := range reps {
			s += fmt.Sprintf("%s: class-C fraction %.2f\n", r.Link, r.ClassCFraction())
		}
		return s
	})
}

// BenchmarkFigure8 regenerates the CDF of replica-stream duration.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, "fig8", analysis.RenderFigure8) }

// BenchmarkFigure9 regenerates the CDF of routing-loop duration.
func BenchmarkFigure9(b *testing.B) { benchFigure(b, "fig9", analysis.RenderFigure9) }

// BenchmarkLossImpact regenerates the §VI per-minute loss analysis.
func BenchmarkLossImpact(b *testing.B) {
	runs := backbones(b)
	b.ResetTimer()
	var max float64
	for i := 0; i < b.N; i++ {
		max = 0
		for _, r := range runs {
			lr := analysis.AnalyzeLoss(r.net)
			if lr.MaxLoopShare > max {
				max = lr.MaxLoopShare
			}
		}
	}
	b.StopTimer()
	var out string
	for _, r := range runs {
		out += analysis.RenderLoss(r.spec.Name, analysis.AnalyzeLoss(r.net))
	}
	printFirst("loss", out)
	b.ReportMetric(max*100, "worst-minute-loop-share-%")
}

// BenchmarkEscapeDelay regenerates the §VI escape/extra-delay
// analysis.
func BenchmarkEscapeDelay(b *testing.B) {
	runs := backbones(b)
	b.ResetTimer()
	var dr *analysis.DelayReport
	for i := 0; i < b.N; i++ {
		for _, r := range runs {
			dr = analysis.AnalyzeDelay(r.net)
		}
	}
	b.StopTimer()
	var out string
	for _, r := range runs {
		out += analysis.RenderDelay(r.spec.Name, analysis.AnalyzeDelay(r.net))
	}
	printFirst("delay", out)
	if dr.ExtraDelayMs.N() > 0 {
		b.ReportMetric(dr.ExtraDelayMs.Quantile(0.5), "p50-extra-ms")
	}
}

// BenchmarkMergeWindowAblation sweeps the step-3 merge window (1, 2, 5
// minutes; the paper's §IV-A.3 footnote).
func BenchmarkMergeWindowAblation(b *testing.B) {
	runs := backbones(b)
	windows := []time.Duration{time.Minute, 2 * time.Minute, 5 * time.Minute}
	counts := make([]int, len(windows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for wi, w := range windows {
			cfg := core.DefaultConfig()
			cfg.MergeWindow = w
			counts[wi] = 0
			for _, res := range detectAll(runs, cfg) {
				counts[wi] += len(res.Loops)
			}
		}
	}
	b.StopTimer()
	out := "Merge-window ablation (total loops across traces):\n"
	for wi, w := range windows {
		out += fmt.Sprintf("  %-4s  %d\n", w, counts[wi])
	}
	printFirst("ablation-merge", out)
}

// BenchmarkMinReplicasAblation sweeps the minimum stream size (2
// admits the link-layer duplicates the paper excludes).
func BenchmarkMinReplicasAblation(b *testing.B) {
	runs := backbones(b)
	mins := []int{2, 3, 4}
	counts := make([]int, len(mins))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for mi, m := range mins {
			cfg := core.DefaultConfig()
			cfg.MinReplicas = m
			counts[mi] = 0
			for _, res := range detectAll(runs, cfg) {
				counts[mi] += len(res.Streams)
			}
		}
	}
	b.StopTimer()
	out := "Min-replicas ablation (total streams across traces):\n"
	for mi, m := range mins {
		out += fmt.Sprintf("  %d  %d\n", m, counts[mi])
	}
	printFirst("ablation-minrep", out)
}

// BenchmarkTTLDeltaAblation sweeps the minimum TTL delta (1 admits
// NAT/load-balancer artefacts the paper excludes).
func BenchmarkTTLDeltaAblation(b *testing.B) {
	runs := backbones(b)
	deltas := []int{1, 2, 3}
	counts := make([]int, len(deltas))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for di, d := range deltas {
			cfg := core.DefaultConfig()
			cfg.MinTTLDelta = d
			counts[di] = 0
			for _, res := range detectAll(runs, cfg) {
				counts[di] += len(res.Streams)
			}
		}
	}
	b.StopTimer()
	out := "Min-TTL-delta ablation (total streams across traces):\n"
	for di, d := range deltas {
		out += fmt.Sprintf("  %d  %d\n", d, counts[di])
	}
	printFirst("ablation-delta", out)
}

// BenchmarkPrefixBitsAblation sweeps the aggregation width used for
// validation and merging (the paper uses /24).
func BenchmarkPrefixBitsAblation(b *testing.B) {
	runs := backbones(b)
	bitses := []int{16, 24, 32}
	counts := make([]int, len(bitses))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for bi, bits := range bitses {
			cfg := core.DefaultConfig()
			cfg.PrefixBits = bits
			counts[bi] = 0
			for _, res := range detectAll(runs, cfg) {
				counts[bi] += len(res.Loops)
			}
		}
	}
	b.StopTimer()
	out := "Prefix-bits ablation (total loops across traces):\n"
	for bi, bits := range bitses {
		out += fmt.Sprintf("  /%d  %d\n", bits, counts[bi])
	}
	printFirst("ablation-prefix", out)
}

// BenchmarkBaselineComparison runs a traceroute prober against a
// scaled backbone and compares active vs passive detection (§III).
func BenchmarkBaselineComparison(b *testing.B) {
	var out string
	var seen, gtN, passive int
	for i := 0; i < b.N; i++ {
		spec := scenario.PaperBackbones()[2]
		spec.Duration = 120 * time.Second
		spec.PacketsPerSecond = 500
		bb := scenario.Build(spec)
		var dsts []packet.Addr
		for j, p := range bb.DestPrefixes {
			if j%8 == 0 {
				dsts = append(dsts, packet.AddrFromUint32(p.Addr.Uint32()+7))
			}
		}
		pr := baseline.NewProber(bb.Net, bb.Net.Router(0),
			packet.MustParseAddr("10.10.255.254"), dsts, baseline.DefaultConfig())
		pr.Start(spec.Duration)
		bb.Run()
		res := core.DetectRecords(bb.Records(), core.DefaultConfig())
		seen = pr.LoopsDetected()
		gtN = len(bb.Net.GroundTruthWindows(time.Minute))
		passive = len(res.Loops)
		out = fmt.Sprintf("Baseline comparison: ground truth %d loop windows; passive detector %d loops; active probing saw %d\n",
			gtN, passive, seen)
	}
	printFirst("baseline", out)
	b.ReportMetric(float64(passive), "passive-loops")
	b.ReportMetric(float64(seen), "active-loops")
}

// BenchmarkDetectorThroughput measures raw detection speed on a large
// synthesized trace (records/second), the figure that matters for
// applying the tool to real multi-hour captures.
func BenchmarkDetectorThroughput(b *testing.B) {
	rng := stats.NewRNG(9)
	var dests []routing.Prefix
	for i := 0; i < 256; i++ {
		dests = append(dests, routing.NewPrefix(packet.AddrFrom(198, byte(20+i/256), byte(i), 0), 24))
	}
	cfg := traffic.SynthConfig{
		Duration: 60 * time.Second, PacketsPerSecond: 20000,
		Mix: traffic.DefaultMix(), DestPrefixes: dests,
		HopsMin: 3, HopsMax: 10,
	}
	for i := 0; i < 12; i++ {
		cfg.Loops = append(cfg.Loops, traffic.LoopSpec{
			Prefix:   dests[rng.Intn(len(dests))],
			Start:    time.Duration(rng.Int63n(int64(50 * time.Second))),
			Duration: time.Duration(200+rng.Intn(3000)) * time.Millisecond,
			TTLDelta: 2 + rng.Intn(4), Revolution: 3 * time.Millisecond,
		})
	}
	recs := traffic.Synthesize(cfg, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DetectRecords(recs, core.DefaultConfig())
	}
	b.StopTimer()
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

var (
	parallelTraceOnce sync.Once
	parallelTraceRecs []trace.Record
)

// parallelBenchTrace synthesizes the multi-million-record workload the
// parallel sweep measures, once per test binary (synthesis costs more
// than detection and must stay outside the timed region).
func parallelBenchTrace() []trace.Record {
	parallelTraceOnce.Do(func() {
		rng := stats.NewRNG(21)
		var dests []routing.Prefix
		for i := 0; i < 256; i++ {
			dests = append(dests, routing.NewPrefix(packet.AddrFrom(198, 20, byte(i), 0), 24))
		}
		cfg := traffic.SynthConfig{
			Duration: 100 * time.Second, PacketsPerSecond: 20000,
			Mix: traffic.DefaultMix(), DestPrefixes: dests,
			HopsMin: 3, HopsMax: 10,
		}
		for i := 0; i < 12; i++ {
			cfg.Loops = append(cfg.Loops, traffic.LoopSpec{
				Prefix:   dests[rng.Intn(len(dests))],
				Start:    time.Duration(rng.Int63n(int64(80 * time.Second))),
				Duration: time.Duration(200+rng.Intn(3000)) * time.Millisecond,
				TTLDelta: 2 + rng.Intn(4), Revolution: 3 * time.Millisecond,
			})
		}
		parallelTraceRecs = traffic.Synthesize(cfg, rng)
	})
	return parallelTraceRecs
}

// BenchmarkParallelDetect sweeps the sharded engine's worker count
// over the same multi-million-record trace; records/s per worker count
// is the scaling figure (the CI smoke job extracts it into
// BENCH_parallel.json). workers=1 runs the sequential Detector, so the
// sweep directly measures pipeline overhead and shard scaling. Note
// the speedup can only materialize when the host actually has the
// cores — on a single-core runner every worker count lands within
// noise of sequential.
func BenchmarkParallelDetect(b *testing.B) {
	recs := parallelBenchTrace()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.DefaultConfig(), core.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if bo, ok := e.(core.BatchObserver); ok {
					bo.ObserveBatch(recs)
				} else {
					for _, r := range recs {
						e.Observe(r)
					}
				}
				if res := e.Finish(); res.TotalPackets != len(recs) {
					b.Fatalf("engine saw %d of %d records", res.TotalPackets, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkNaiveVsIndexed quantifies the hash index against the naive
// pairwise scan on the same trace (DESIGN.md ablation 5).
func BenchmarkNaiveVsIndexed(b *testing.B) {
	rng := stats.NewRNG(10)
	var dests []routing.Prefix
	for i := 0; i < 64; i++ {
		dests = append(dests, routing.NewPrefix(packet.AddrFrom(198, 30, byte(i), 0), 24))
	}
	cfg := traffic.SynthConfig{
		Duration: 20 * time.Second, PacketsPerSecond: 5000,
		Mix: traffic.DefaultMix(), DestPrefixes: dests,
		HopsMin: 3, HopsMax: 10,
		Loops: []traffic.LoopSpec{{
			Prefix: dests[3], Start: 5 * time.Second,
			Duration: 2 * time.Second, TTLDelta: 2, Revolution: 3 * time.Millisecond,
		}},
	}
	recs := traffic.Synthesize(cfg, rng)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DetectRecords(recs, core.DefaultConfig())
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NaiveDetectRecords(recs, core.DefaultConfig())
		}
	})
}

// BenchmarkStreamingVsBatch compares the bounded-memory streaming
// detector with the batch detector on the same trace (they produce
// identical loops; the trade is allocation footprint vs loop latency).
func BenchmarkStreamingVsBatch(b *testing.B) {
	rng := stats.NewRNG(14)
	var dests []routing.Prefix
	for i := 0; i < 128; i++ {
		dests = append(dests, routing.NewPrefix(packet.AddrFrom(198, 40, byte(i), 0), 24))
	}
	cfg := traffic.SynthConfig{
		Duration: 60 * time.Second, PacketsPerSecond: 10000,
		Mix: traffic.DefaultMix(), DestPrefixes: dests,
		HopsMin: 3, HopsMax: 10,
	}
	for i := 0; i < 8; i++ {
		cfg.Loops = append(cfg.Loops, traffic.LoopSpec{
			Prefix:     dests[rng.Intn(len(dests))],
			Start:      time.Duration(rng.Int63n(int64(50 * time.Second))),
			Duration:   time.Duration(200+rng.Intn(2000)) * time.Millisecond,
			TTLDelta:   2 + rng.Intn(3),
			Revolution: 3 * time.Millisecond,
		})
	}
	recs := traffic.Synthesize(cfg, rng)
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.DetectRecords(recs, core.DefaultConfig())
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sd := core.NewStreamDetector(core.DefaultConfig(), nil)
			for _, r := range recs {
				sd.Observe(r)
			}
			sd.Finish()
		}
	})
}

// BenchmarkObsOverhead measures what pipeline instrumentation costs:
// mode=noop runs the full ingest/batch/detect pipeline with a nil
// registry — the uninstrumented default, where every metric call is a
// nil-receiver no-op — and mode=instrumented runs the identical
// pipeline against a live registry (ingest tap, batch histogram,
// per-shard counters, backpressure timing, stage spans). CI extracts
// both into BENCH_obs.json and fails the build when instrumented
// regresses more than the budget (see cmd/benchjson -mode obs): the
// observability subsystem's overhead contract, kept honest by a
// benchmark instead of a comment.
func BenchmarkObsOverhead(b *testing.B) {
	recs := parallelBenchTrace()
	for _, mode := range []string{"noop", "instrumented"} {
		b.Run("mode="+mode, func(b *testing.B) {
			b.ReportAllocs()
			var reg *obs.Registry
			if mode == "instrumented" {
				reg = obs.NewRegistry()
			}
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.DefaultConfig(), core.WithWorkers(4), core.WithMetrics(reg))
				if err != nil {
					b.Fatal(err)
				}
				src := trace.MeterSource(trace.NewSliceSource(trace.Meta{Link: "bench"}, recs), reg, nil)
				res, err := core.RunMetered(e, src, reg)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalPackets != len(recs) {
					b.Fatalf("engine saw %d of %d records", res.TotalPackets, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			if reg != nil {
				for _, st := range reg.StageTimings() {
					b.ReportMetric(float64(st.Total.Nanoseconds())/float64(b.N), "stage_"+st.Stage+"_ns")
				}
			}
		})
	}
}

// BenchmarkFlightRecorder measures the decision-tracing tax the same
// way BenchmarkObsOverhead measures metrics: mode=noop runs the
// parallel pipeline with no recorder attached (a nil *flight.Recorder
// handle, so every lifecycle call is a nil-receiver no-op) and
// mode=recording attaches a recorder with the production defaults
// (sampled replica appends, bounded per-shard rings). CI extracts both
// into BENCH_obs.json (cmd/benchjson -mode obs) under the same
// regression budget, keeping "low-overhead" a tested property.
func BenchmarkFlightRecorder(b *testing.B) {
	recs := parallelBenchTrace()
	for _, mode := range []string{"noop", "recording"} {
		b.Run("mode="+mode, func(b *testing.B) {
			b.ReportAllocs()
			var fr *flight.Recorder
			if mode == "recording" {
				fr = flight.New(flight.Options{})
			}
			for i := 0; i < b.N; i++ {
				e, err := core.New(core.DefaultConfig(), core.WithWorkers(4), core.WithFlight(fr))
				if err != nil {
					b.Fatal(err)
				}
				src := trace.NewSliceSource(trace.Meta{Link: "bench"}, recs)
				res, err := core.RunMetered(e, src, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalPackets != len(recs) {
					b.Fatalf("engine saw %d of %d records", res.TotalPackets, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			if fr != nil {
				st := fr.Stats()
				b.ReportMetric(float64(st.Events)/float64(b.N), "flight_events/op")
			}
		})
	}
}

// BenchmarkAnalyticsIngest measures the online-analytics tax the same
// way BenchmarkObsOverhead measures metrics: mode=noop runs the
// streaming pipeline with an emit callback that only counts loops,
// and mode=ingesting reduces every emitted loop through
// analytics.ObsFromLoop into a live collector — sketches, window
// segments, top-K, the whole /api/v1/stats feed. CI extracts both
// into BENCH_obs.json (cmd/benchjson -mode obs) under the shared
// regression budget, so "the daemon can afford always-on analytics"
// stays a tested property.
func BenchmarkAnalyticsIngest(b *testing.B) {
	recs := parallelBenchTrace()
	for _, mode := range []string{"noop", "ingesting"} {
		b.Run("mode="+mode, func(b *testing.B) {
			b.ReportAllocs()
			var c *analytics.Collector
			if mode == "ingesting" {
				c = analytics.NewCollector(analytics.Options{})
			}
			var loops int64
			for i := 0; i < b.N; i++ {
				seq := 0
				emit := func(l *core.Loop) { seq++ }
				if c != nil {
					emit = func(l *core.Loop) {
						seq++
						c.RecordLoop("bench", analytics.ObsFromLoop(fmt.Sprintf("%d-%d", i, seq), l))
					}
				}
				e, err := core.New(core.DefaultConfig(), core.WithStreaming(emit))
				if err != nil {
					b.Fatal(err)
				}
				src := trace.NewSliceSource(trace.Meta{Link: "bench"}, recs)
				res, err := core.RunMetered(e, src, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalPackets != len(recs) {
					b.Fatalf("engine saw %d of %d records", res.TotalPackets, len(recs))
				}
				loops = int64(seq)
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			if c != nil {
				ingested, _ := c.Counts()
				b.ReportMetric(float64(ingested)/float64(b.N), "analytics_loops/op")
				_ = loops
			}
		})
	}
}

// BenchmarkProvenanceStamp measures the pipeline-provenance tax the
// same way BenchmarkObsOverhead measures metrics: mode=noop runs the
// streaming pipeline with an emit callback that only counts loops
// (the nil-record, allocation-free stamp path), and mode=stamping
// performs the full per-event hop work the daemon does — the
// detect/publish/journal stamp chain plus the copy-on-write webhook
// divergence — per emitted loop. CI extracts both into BENCH_obs.json
// (cmd/benchjson -mode obs) under the shared 5% regression budget, so
// "provenance rides every event for free" stays a tested property.
func BenchmarkProvenanceStamp(b *testing.B) {
	recs := parallelBenchTrace()
	for _, mode := range []string{"noop", "stamping"} {
		b.Run("mode="+mode, func(b *testing.B) {
			b.ReportAllocs()
			stamping := mode == "stamping"
			var sink int64
			for i := 0; i < b.N; i++ {
				seq := 0
				emit := func(l *core.Loop) { seq++ }
				if stamping {
					emit = func(l *core.Loop) {
						seq++
						var r *provenance.Record
						r = r.Stamp(provenance.HopDetected, provenance.Now())
						r = r.Stamp(provenance.HopPublished, provenance.Now())
						r = r.Stamp(provenance.HopJournaled, provenance.Now())
						w := r.Stamp(provenance.HopWebhookSent, provenance.Now())
						sink += w.WebhookSentNs - r.DetectedNs
					}
				}
				e, err := core.New(core.DefaultConfig(), core.WithStreaming(emit))
				if err != nil {
					b.Fatal(err)
				}
				src := trace.NewSliceSource(trace.Meta{Link: "bench"}, recs)
				res, err := core.RunMetered(e, src, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalPackets != len(recs) {
					b.Fatalf("engine saw %d of %d records", res.TotalPackets, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			_ = sink
		})
	}
}

// BenchmarkAggIngest measures the fleet aggregator's observation path
// (journal-less, so the numbers isolate correlation + dedup + stats,
// not disk). mode=fresh ingests never-seen events: seen-set insert,
// cluster scan/join across ~1k live clusters, per-vantage analytics
// reduction. mode=duplicate replays an already-absorbed batch — the
// at-least-once redelivery path every webhook retry and poll overlap
// takes, which must stay a cheap seen-set hit. CI extracts both into
// BENCH_agg.json (cmd/benchjson -mode agg) and fails when the
// duplicate path costs more than the fresh path plus the shared
// regression budget.
func BenchmarkAggIngest(b *testing.B) {
	const batch = 1024
	mkObs := func(round, i int) agg.Observation {
		vantage := fmt.Sprintf("bb%d", i%8)
		start := int64(i) * int64(time.Minute)
		return agg.Observation{Vantage: vantage, Transport: agg.TransportPush,
			Event: loopscope.Event{
				ID:         fmt.Sprintf("e%d-%d", round, i),
				Source:     "bench-tap",
				Vantage:    vantage,
				Prefix:     fmt.Sprintf("10.%d.%d.0/24", i/256%256, i%256),
				StartNs:    start,
				EndNs:      start + int64(30*time.Second),
				DurationNs: int64(30 * time.Second),
				Streams:    2,
				Replicas:   12,
				TTLDelta:   2 + i%5,
			}}
	}
	for _, mode := range []string{"fresh", "duplicate"} {
		b.Run("mode="+mode, func(b *testing.B) {
			b.ReportAllocs()
			now := time.Unix(1_700_000_000, 0)
			a, err := agg.New(agg.Config{Now: func() time.Time { return now }})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			if mode == "duplicate" {
				for i := 0; i < batch; i++ {
					if _, err := a.Ingest(mkObs(0, i)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				// Fresh rounds mint new event IDs but repeat the same
				// prefixes and windows, so observations join existing
				// clusters instead of growing the cluster table
				// unboundedly; the duplicate round replays round 0.
				round := 0
				if mode == "fresh" {
					round = n + 1
				}
				for i := 0; i < batch; i++ {
					accepted, err := a.Ingest(mkObs(round, i))
					if err != nil {
						b.Fatal(err)
					}
					if want := mode == "fresh"; accepted != want {
						b.Fatalf("Ingest accepted = %v in mode %s", accepted, mode)
					}
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "obs/s")
			if mode == "fresh" {
				observations, _, fleetLoops, _ := a.Counts()
				if observations != int64(batch)*int64(b.N) {
					b.Fatalf("aggregator absorbed %d observations, want %d", observations, int64(batch)*int64(b.N))
				}
				b.ReportMetric(float64(fleetLoops), "fleet_loops")
			}
		})
	}
}

// BenchmarkFIBScan measures the static control-plane loop scan
// (internal/fibscan) on synthetic hub-and-spoke fleets: 10k prefixes,
// 20 injected stale-convergence loops, at two fleet sizes. The sweep
// is O(entries + atoms x routers), so per-router cost must not grow
// with fleet size; CI extracts both rows into BENCH_fibscan.json
// (cmd/benchjson -mode fibscan) and fails when the large fleet's
// per-router cost regresses past the budget relative to the small one.
func BenchmarkFIBScan(b *testing.B) {
	const prefixes, loops = 10000, 20
	for _, routers := range []int{100, 1000} {
		snap, looped := fibscan.Synthetic(routers, prefixes, loops)
		b.Run(fmt.Sprintf("routers=%d", routers), func(b *testing.B) {
			b.ReportAllocs()
			var rep *fibscan.Report
			for i := 0; i < b.N; i++ {
				rep = fibscan.Scan(&snap)
			}
			if len(rep.Warnings) != 0 {
				b.Fatalf("scan warned: %v", rep.Warnings)
			}
			found := 0
			for _, p := range looped {
				for i := range rep.Cycles {
					if rep.Cycles[i].CoversPrefix(p) {
						found++
						break
					}
				}
			}
			if found != len(looped) {
				b.Fatalf("found %d of %d injected loops", found, len(looped))
			}
			b.ReportMetric(float64(rep.Atoms), "atoms")
			b.ReportMetric(float64(len(rep.Cycles)), "cycles")
		})
	}
}
